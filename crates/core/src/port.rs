//! Send and receive ports: the IPL's "one elementary communication
//! abstraction, unidirectional message channels" (paper §5).
//!
//! A [`SendPort`] connects to one or more named [`ReceivePort`]s (group
//! communication duplicates messages across connections); each connection
//! carries FIFO-ordered messages over a driver stack assembled per the
//! receive port's [`StackSpec`]. Message boundaries are explicit: data is
//! aggregated until `finish()` flushes the stack — the user-space
//! aggregation + explicit flush of paper §4.1.
//!
//! Connections are *channels* riding shared session-layer links
//! ([`crate::session`]): every channel a node opens to the same peer with
//! the same effective stack spec multiplexes over ONE established link.

use bytes::Bytes;
use gridsim_net::{SchedHandle, SimQueue};
use gridzip::varint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::drivers::{
    build_receiver_parts, PathParams, RawLink, ReceiverStack, StackSpec, StripeQuiesce,
};
use crate::establish::EstablishMethod;
use crate::node::{GridNode, NodeCtx};
use crate::pool::{BlockBuf, BlockPool, PoolStats};
use crate::relay::RelayClient;
use crate::session::{Channel, SharedLink};
use crate::wire::{mux, FrameWriter};

/// Upper bound on a single message (sanity against corrupt frames).
pub const MAX_MESSAGE: u64 = 256 << 20;

/// A received message with typed readers.
pub struct ReadMessage {
    /// The sender's channel id (unique per logical connection).
    pub channel: u64,
    data: Vec<u8>,
    pos: usize,
}

impl ReadMessage {
    pub(crate) fn new(channel: u64, data: Vec<u8>) -> ReadMessage {
        ReadMessage {
            channel,
            data,
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn remaining(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn read_bytes(&mut self, n: usize) -> io::Result<&[u8]> {
        // Checked: a corrupt length near usize::MAX must not overflow `pos`
        // (which would panic in debug and silently wrap in release).
        let end = self
            .pos
            .checked_add(n)
            .ok_or(io::ErrorKind::UnexpectedEof)?;
        if end > self.data.len() {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn read_u64(&mut self) -> io::Result<u64> {
        let (v, used) = varint::get(&self.data[self.pos..])
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        self.pos += used;
        Ok(v)
    }

    pub fn read_u32(&mut self) -> io::Result<u32> {
        let v = self.read_u64()?;
        u32::try_from(v).map_err(|_| io::ErrorKind::InvalidData.into())
    }

    pub fn read_str(&mut self) -> io::Result<String> {
        let n = self.read_u64()?;
        if n > MAX_MESSAGE {
            return Err(io::ErrorKind::InvalidData.into());
        }
        let b = self.read_bytes(n as usize)?;
        // Validate on the borrow; only valid strings pay for the copy.
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| io::ErrorKind::InvalidData.into())
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

/// A message under construction on a send port. Writes accumulate in a
/// pooled buffer; `finish()` freezes it into a refcounted block that every
/// connection's stack shares without copying.
pub struct WriteMessage<'a> {
    port: &'a mut SendPort,
    buf: BlockBuf,
}

impl WriteMessage<'_> {
    pub fn write_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        varint::put(&mut self.buf, v);
        self
    }

    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_u64(v as u64)
    }

    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Frame the message and flush it down every connection's stack. This
    /// is the explicit flush of §4.1: nothing hits the wire until a full
    /// buffer or this call.
    pub fn finish(self) -> io::Result<usize> {
        let len = self.buf.len();
        self.port.send_framed(self.buf.freeze())?;
        Ok(len)
    }
}

/// Default resend-buffer byte budget per connection: bytes of recently
/// sent messages retained for replay after a reconnect (override with
/// [`GridEnv::with_resend_budget`]). With the cumulative-ack protocol the
/// buffer is continuously pruned to the receiver's watermark, so this is a
/// backstop, not the steady-state size; if eviction ever discards a
/// message recovery later needs, the resume fails with [`ResendOverflow`]
/// rather than violating exactly-once.
///
/// [`GridEnv::with_resend_budget`]: crate::node::GridEnv::with_resend_budget
pub(crate) const RESEND_BUDGET: usize = 8 * 1024 * 1024;

/// Default cumulative-ack cadence: the receive port sends one
/// `CACK{channel, delivered}` service frame per this many delivered bytes.
/// Three quarters of the resend budget: pruning still lands well before
/// the eviction cliff, while fault-free transfers up to 6 MiB per channel
/// never cross it — their wire traces carry no ack traffic at all.
pub(crate) const ACK_BYTES_DEFAULT: usize = RESEND_BUDGET / 4 * 3;

/// An idle channel (no deliveries for this long) with unacknowledged
/// delivered bytes flushes a CACK so a stalled sender still prunes. Longer
/// than any fault-free inter-message gap in the benches, so active
/// transfers only ack on the byte cadence.
const ACK_IDLE_FLUSH: Duration = Duration::from_secs(2);

/// Deadline on a CACK service round-trip. Acks are advisory and
/// cumulative: a lost or timed-out one is subsumed by the next.
const ACK_SVC_TIMEOUT: Duration = Duration::from_secs(5);

/// Monotonic cumulative-ack watermark, shared between a send channel and
/// the node's CACK service handler. CACK frames can arrive reordered
/// (independent service round-trips); only the maximum matters.
pub(crate) struct AckCell(AtomicU64);

impl AckCell {
    pub(crate) fn new() -> AckCell {
        AckCell(AtomicU64::new(0))
    }

    pub(crate) fn advance(&self, delivered: u64) {
        self.0.fetch_max(delivered, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Typed error: a resume needed messages the resend buffer had already
/// evicted past its byte budget, so replay would leave a gap. Carried as
/// the source of an `InvalidData` [`io::Error`]; retrieve it with
/// `err.get_ref().and_then(|s| s.downcast_ref::<ResendOverflow>())`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResendOverflow {
    /// The channel whose replay gap is unrecoverable.
    pub channel: u64,
    /// The receiver's delivered watermark at the failed resume.
    pub acked: u64,
    /// Oldest sequence number still retained; `[acked, oldest)` is gone.
    pub oldest: u64,
}

impl std::fmt::Display for ResendOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resend buffer overflowed on channel {}: receiver delivered {}, \
             oldest retained message is {} — the gap was evicted past the budget",
            self.channel, self.acked, self.oldest
        )
    }
}

impl std::error::Error for ResendOverflow {}

/// One logical connection of a [`SendPort`]: a channel attached to a
/// shared session-layer link.
pub(crate) struct SendConnection {
    pub link: Arc<SharedLink>,
    pub chan: Arc<Channel>,
}

/// Decoded resume preamble metadata: the sender's reconnect generation
/// plus the extra channels multiplexed on the resumed link (beyond the
/// anchor channel the preamble names), as `(channel, receive-port name)`.
pub(crate) struct ResumeMeta {
    pub gen: u64,
    pub extras: Vec<(u64, String)>,
}

/// Receive-side per-channel state shared across ALL of a node's receive
/// ports: exactly-once delivered watermarks and ack bookkeeping. Node-wide
/// because a multiplexed link can carry channels of several ports, and a
/// resume can re-anchor a channel on a different port's listener — the
/// watermark must follow the channel, not the port.
pub(crate) struct RxShared {
    /// Messages delivered per channel — the exactly-once watermark a
    /// resuming sender replays from.
    delivered: Mutex<HashMap<u64, u64>>,
    /// Per-channel ack and lifecycle bookkeeping.
    ack_state: Mutex<HashMap<u64, ChannelAck>>,
}

impl RxShared {
    pub(crate) fn new() -> Arc<RxShared> {
        Arc::new(RxShared {
            delivered: Mutex::new(HashMap::new()),
            ack_state: Mutex::new(HashMap::new()),
        })
    }
}

/// Nominal checkout size of the message pool. Messages may grow past it
/// (a pooled buffer is an ordinary `Vec`); recycled buffers keep their
/// grown capacity, so steady-state sends of any size stop allocating.
const MSG_POOL_BLOCK: usize = 32 * 1024;

/// The sending endpoint of a message channel.
pub struct SendPort {
    pub(crate) node: GridNode,
    pub(crate) conns: Vec<SendConnection>,
    /// Pool backing [`WriteMessage`] buffers.
    msg_pool: BlockPool,
}

impl SendPort {
    pub(crate) fn new(node: GridNode) -> SendPort {
        SendPort {
            node,
            conns: Vec::new(),
            msg_pool: BlockPool::new(MSG_POOL_BLOCK),
        }
    }

    /// A port born already connected — one element of a
    /// [`GridNode::connect_batch`] result.
    pub(crate) fn with_connection(node: GridNode, conn: SendConnection) -> SendPort {
        SendPort {
            node,
            conns: vec![conn],
            msg_pool: BlockPool::new(MSG_POOL_BLOCK),
        }
    }

    /// Connect to the named receive port. If the session layer already
    /// holds an established link to that peer with the same stack spec,
    /// the new channel attaches to it (no new establishment); otherwise
    /// the decision tree runs, single-flighted against concurrent
    /// connects. Returns the link's establishment method.
    pub fn connect(&mut self, port_name: &str) -> io::Result<EstablishMethod> {
        let conn = self.node.establish_connection(port_name, None)?;
        let method = conn.link.method();
        self.conns.push(conn);
        Ok(method)
    }

    /// Connect with an explicit parallel-stream count, overriding the
    /// stream count the receive port registered (paper §8 future work:
    /// "selection of the optimal number of parallel TCP streams" — see the
    /// `autotune_streams` benchmark). The override is part of the link
    /// key: channels with different stream counts use separate links.
    pub fn connect_with_streams(
        &mut self,
        port_name: &str,
        streams: u16,
    ) -> io::Result<EstablishMethod> {
        let conn = self.node.establish_connection(port_name, Some(streams))?;
        let method = conn.link.method();
        self.conns.push(conn);
        Ok(method)
    }

    /// Number of live connections (group communication sends to all).
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Establishment method of connection `i` (of its underlying link,
    /// which recovery may have migrated to a different method).
    pub fn method_of(&self, i: usize) -> Option<EstablishMethod> {
        self.conns.get(i).map(|c| c.link.method())
    }

    /// (peer port name, method, channel id) per connection — diagnostics.
    pub fn connections(&self) -> Vec<(String, EstablishMethod, u64)> {
        self.conns
            .iter()
            .map(|c| (c.chan.peer_port.clone(), c.link.method(), c.chan.channel))
            .collect()
    }

    /// Live path parameters of connection `i`'s underlying link.
    pub fn path_params(&self, i: usize) -> Option<PathParams> {
        self.conns.get(i).map(|c| c.link.path_params())
    }

    /// Epoch of the last committed RECONFIG on connection `i`'s link
    /// (0 = never reconfigured; abandoned attempts burn epochs, so gaps
    /// are normal).
    pub fn path_epoch(&self, i: usize) -> Option<u64> {
        self.conns.get(i).map(|c| c.link.path_epoch())
    }

    /// Telemetry ring of connection `i`'s link, oldest first — the
    /// samples the session-layer control loop decides from. Empty unless
    /// path control is on (`GridEnv::with_path_control`) or the caller
    /// samples by hand.
    pub fn path_telemetry(&self, i: usize) -> Option<Vec<crate::tune::PathStats>> {
        self.conns.get(i).map(|c| c.link.stats_ring())
    }

    /// Reconfigure every distinct underlying link to `params` live
    /// (DESIGN.md §11): stripe count, block size and compression switch
    /// at a frame boundary without tearing the connections down, and
    /// FIFO exactly-once delivery is preserved across the swap. Returns
    /// whether any link actually changed. The stripe count is limited to
    /// the connections establishment dialed (the link's stream count).
    pub fn reconfigure(&mut self, params: PathParams) -> io::Result<bool> {
        let mut seen: Vec<*const SharedLink> = Vec::new();
        let mut changed = false;
        for c in &self.conns {
            let p = Arc::as_ptr(&c.link);
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            changed |= self.node.reconfigure_link(&c.link, params)?;
        }
        Ok(changed)
    }

    /// Resend-buffer usage per connection: `(current_bytes, peak_bytes)`.
    /// Peak is measured before eviction, so `peak <= cap` proves the ack
    /// protocol — not the eviction cliff — kept the buffer bounded.
    pub fn resend_stats(&self) -> Vec<(usize, usize)> {
        self.conns.iter().map(|c| c.chan.resend_stats()).collect()
    }

    /// Start a new message.
    pub fn message(&mut self) -> WriteMessage<'_> {
        let buf = self.msg_pool.checkout();
        WriteMessage { port: self, buf }
    }

    /// Buffer-pool counters aggregated over the message pool and every
    /// distinct link's driver-stack pool (connections sharing a link share
    /// its pool — counted once).
    pub fn pool_stats(&self) -> PoolStats {
        let mut agg = self.msg_pool.stats();
        let mut seen: Vec<*const SharedLink> = Vec::new();
        for c in &self.conns {
            let p = Arc::as_ptr(&c.link);
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            let s = c.link.io().pool.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
        }
        agg
    }

    /// One-shot convenience: send `data` as a single message.
    pub fn send(&mut self, data: &[u8]) -> io::Result<()> {
        let mut m = self.message();
        m.write_bytes(data);
        m.finish()?;
        Ok(())
    }

    fn send_framed(&mut self, payload: Bytes) -> io::Result<()> {
        if self.conns.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "send port not connected",
            ));
        }
        let node = self.node.clone();
        for c in &self.conns {
            node.send_on(c, &payload)?;
        }
        Ok(())
    }

    /// Flush and close all connections (graceful: the peer observes each
    /// channel's clean close). A channel sharing its link with others
    /// announces the close in-band and leaves the link up; the LAST
    /// channel's close tears the link down and the peer sees EOF. If a
    /// link died with messages still unconfirmed, it is recovered and the
    /// tail replayed before closing.
    pub fn close(mut self) -> io::Result<()> {
        let node = self.node.clone();
        let mut first_err: Option<io::Error> = None;
        for c in self.conns.drain(..) {
            if let Err(e) = node.close_channel(&c) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for SendPort {
    fn drop(&mut self) {
        // A port dropped without close() must still detach its channels
        // (so shared links stop replaying them) and unregister its ack
        // watermarks. close() drains `conns`, making this a no-op.
        for c in self.conns.drain(..) {
            self.node.drop_channel(&c);
        }
    }
}

/// Shared state of a receive port, reachable from accept paths.
pub struct ReceivePortInner {
    pub name: String,
    pub spec: StackSpec,
    msgq: SimQueue<ReadMessage>,
    /// Streams collected per channel until a connection is complete.
    pending: Mutex<HashMap<u64, PendingChannel>>,
    connections: Mutex<u64>,
    /// CACK transport + cadence (`None`: no relay, or acks disabled).
    ack: Option<AckSender>,
    /// Node-wide delivered watermarks + ack state (channels can migrate
    /// between ports' pumps via mux routing).
    rx: Arc<RxShared>,
}

struct PendingChannel {
    links: Vec<Option<RawLink>>,
    received: usize,
    /// Reconnect generation this assembly belongs to (0 = first connect).
    gen: u64,
}

/// How a receive port reports `CACK{channel, delivered}` back to the
/// sending node: as service requests on the relay link — never on the data
/// path, so fault-free data-path wire traces stay byte-identical.
pub(crate) struct AckSender {
    pub(crate) relay: RelayClient,
    pub(crate) sched: SchedHandle,
    /// Emit one CACK per this many delivered payload bytes.
    pub(crate) every: usize,
}

impl AckSender {
    /// Fire-and-forget from a fresh daemon (a service round-trip parks,
    /// and the callers — the pump and the idle timer — must not). A lost
    /// or timed-out CACK is subsumed by the next: the watermark is
    /// cumulative and the handler takes the max.
    fn send(&self, channel: u64, delivered: u64) {
        let relay = self.relay.clone();
        self.sched.spawn_daemon("cack-send", move || {
            let frame = FrameWriter::new()
                .u8(crate::node::svc::CACK)
                .u64(channel)
                .u64(delivered)
                .into_bytes();
            // Channel ids embed the sender's grid id in the high bits.
            let _ = relay.service_request_timeout(channel >> 24, &frame, Some(ACK_SVC_TIMEOUT));
        });
    }
}

#[derive(Default)]
struct ChannelAck {
    /// Live pump tasks (briefly 2 while a resume supersedes a stale pump).
    pumps: u32,
    /// Delivered bytes not yet covered by a sent CACK.
    bytes_since: usize,
    /// Total delivered bytes, for idle detection.
    total: u64,
    /// `total` when the pending idle timer was scheduled.
    seen: u64,
    /// An idle-flush timer is pending.
    timer: bool,
    /// The sender announced a clean close (mux CLOSE frame) — the channel
    /// will never resume even though its link stays up.
    closed: bool,
}

/// One channel a pump is routing: its next expected sequence number and
/// the receive port it delivers to (`None` after that port closed — the
/// channel's bytes still drain to keep the link's other channels alive).
struct LiveChan {
    seq: u64,
    inner: Option<Arc<ReceivePortInner>>,
}

/// Demand-stating parse cursor over the assembled receiver stack:
/// refcounted chunks buffered in front, [`BlockRead::read_chunks_min`]
/// behind. Each shortfall crosses the stack as ONE call stating the real
/// byte demand, so a demand-aware source (the simulated TCP socket) parks
/// once and is serviced at event time until the demand is met. Read-ahead
/// past the demand is capped at the stack's block size — the same fill
/// granularity the byte-oriented parser had through `BlockReader`, so
/// socket drain sizes (and hence window-update acks and wire traces) are
/// unchanged.
///
/// [`BlockRead::read_chunks_min`]: crate::drivers::BlockRead::read_chunks_min
struct ChunkCursor {
    stack: ReceiverStack,
    chunks: std::collections::VecDeque<Bytes>,
    /// Total bytes buffered in `chunks`.
    avail: usize,
    /// Read-ahead unit (the stack's block size).
    cap: usize,
    /// Reused landing pad for `read_chunks_min`, drained into `chunks`.
    scratch: Vec<Bytes>,
}

impl ChunkCursor {
    fn new(stack: ReceiverStack, cap: usize) -> ChunkCursor {
        ChunkCursor {
            stack,
            chunks: std::collections::VecDeque::new(),
            avail: 0,
            cap: cap.max(1),
            scratch: Vec::new(),
        }
    }

    /// Buffer at least `need` bytes; `false` means EOF or a read error
    /// intervened first (the pump treats both as end-of-stream, exactly as
    /// the old `read_exact`-based parser did).
    fn ensure(&mut self, need: usize) -> bool {
        if self.avail >= need {
            return true;
        }
        let want = need - self.avail;
        let got = match self
            .stack
            .read_chunks_min(want, self.cap, &mut self.scratch)
        {
            Ok(got) => got,
            // Data handed out before the error still counts; the error
            // itself ends the stream below.
            Err(_) => self.scratch.iter().map(|c| c.len()).sum(),
        };
        self.avail += got;
        self.chunks.extend(self.scratch.drain(..));
        self.avail >= need
    }

    fn pop_u8(&mut self) -> u8 {
        let front = self.chunks.front_mut().expect("ensured");
        let b = front[0];
        if front.len() == 1 {
            self.chunks.pop_front();
        } else {
            front.split_to(1);
        }
        self.avail -= 1;
        b
    }

    /// Decode one varint; `None` on end-of-stream or an overlong encoding
    /// (both end the pump loop, like the old `while let Ok(..)`).
    fn read_varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for i in 0..10 {
            if !self.ensure(1) {
                return None;
            }
            let b = self.pop_u8();
            v |= u64::from(b & 0x7f) << (7 * i);
            if b & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Pull exactly `len` bytes as an owned buffer; `None` on early EOF.
    fn read_exact_vec(&mut self, len: usize) -> Option<Vec<u8>> {
        if !self.ensure(len) {
            return None;
        }
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let front = self.chunks.front_mut().expect("ensured");
            let take = front.len().min(len - data.len());
            data.extend_from_slice(&front[..take]);
            if take == front.len() {
                self.chunks.pop_front();
            } else {
                front.split_to(take);
            }
            self.avail -= take;
        }
        Some(data)
    }
}

impl ReceivePortInner {
    pub(crate) fn new(
        name: String,
        spec: StackSpec,
        ack: Option<AckSender>,
        rx: Arc<RxShared>,
    ) -> Arc<ReceivePortInner> {
        Arc::new(ReceivePortInner {
            name,
            spec,
            msgq: SimQueue::bounded(64),
            pending: Mutex::new(HashMap::new()),
            connections: Mutex::new(0),
            ack,
            rx,
        })
    }

    /// Register one raw link of a (possibly multi-stream) incoming
    /// connection; assembles and starts the receiver stack when all streams
    /// have arrived.
    pub(crate) fn add_raw_link(
        self: &Arc<Self>,
        ctx: &NodeCtx,
        channel: u64,
        idx: u16,
        total: u16,
        link: RawLink,
    ) -> io::Result<()> {
        self.add_link(ctx, channel, idx, total, link, None)
    }

    /// Register one raw link of a *resumed* connection (the sender
    /// reconnected after a failure; `meta` carries the generation and the
    /// mux channel list).
    pub(crate) fn add_resume_link(
        self: &Arc<Self>,
        ctx: &NodeCtx,
        channel: u64,
        idx: u16,
        total: u16,
        meta: ResumeMeta,
        link: RawLink,
    ) -> io::Result<()> {
        self.add_link(ctx, channel, idx, total, link, Some(meta))
    }

    fn add_link(
        self: &Arc<Self>,
        ctx: &NodeCtx,
        channel: u64,
        idx: u16,
        total: u16,
        link: RawLink,
        resume: Option<ResumeMeta>,
    ) -> io::Result<()> {
        if total == 0 || idx >= total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad stream preamble",
            ));
        }
        let gen = resume.as_ref().map(|m| m.gen).unwrap_or(0);
        let ready = {
            let mut pending = self.pending.lock();
            // A newer generation supersedes a stale partial assembly (links
            // of a reconnect attempt that itself failed mid-establishment);
            // an older generation is a straggler and is rejected.
            if pending.get(&channel).is_some_and(|e| e.gen < gen) {
                pending.remove(&channel);
            }
            let entry = pending.entry(channel).or_insert_with(|| PendingChannel {
                links: (0..total).map(|_| None).collect(),
                received: 0,
                gen,
            });
            if gen < entry.gen {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stale stream generation",
                ));
            }
            if entry.links.len() != total as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stream count mismatch",
                ));
            }
            let slot = &mut entry.links[idx as usize];
            if slot.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "duplicate stream index",
                ));
            }
            *slot = Some(link);
            entry.received += 1;
            if entry.received == total as usize {
                let entry = pending.remove(&channel).expect("entry exists");
                Some(
                    entry
                        .links
                        .into_iter()
                        .map(|l| l.expect("all present"))
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            }
        };
        if let Some(links) = ready {
            // Resume handshake: tell the sender how many messages were
            // actually delivered — for the anchor channel AND every mux
            // extra, anchor first, preamble order — so it replays exactly
            // the gaps. Written before the stack assembles (raw, ahead of
            // any handshake) and only on resumed connections; a
            // single-channel resume reply is byte-identical to the
            // pre-session-layer format.
            let mut init: Vec<(u64, u64, Option<Arc<ReceivePortInner>>)> = Vec::new();
            let mut muxed_start = false;
            if let Some(meta) = &resume {
                let watermarks: Vec<u64> = {
                    let mut d = self.rx.delivered.lock();
                    let mut ws = vec![*d.entry(channel).or_insert(0)];
                    for (ch, _) in &meta.extras {
                        ws.push(*d.entry(*ch).or_insert(0));
                    }
                    ws
                };
                let mut fw = FrameWriter::new();
                for w in &watermarks {
                    fw = fw.u64(*w);
                }
                let mut w0 = links[0].clone();
                fw.send(&mut w0)?;
                init.push((channel, watermarks[0], Some(Arc::clone(self))));
                for ((ch, name), w) in meta.extras.iter().zip(&watermarks[1..]) {
                    init.push((*ch, *w, (ctx.resolve)(name)));
                }
                muxed_start = !meta.extras.is_empty();
            } else {
                init.push((channel, 0, Some(Arc::clone(self))));
            }
            // Routed links arrive as a single stream regardless of the
            // spec; the preamble's `total` is authoritative.
            let spec = self.spec.clone().with_streams(total.max(1));
            // Health probes for the GC decision at pump exit: clones
            // sharing the underlying sockets, like the sender's.
            let probes = links.clone();
            let (stack, quiesce) = build_receiver_parts(
                links,
                &spec,
                ctx.cpu.clone(),
                ctx.security(&spec).as_ref(),
                &ctx.sched,
            )?;
            *self.connections.lock() += 1;
            let me = Arc::clone(self);
            let pctx = ctx.clone();
            ctx.sched
                .spawn_daemon(format!("rp-pump-{}-{}", self.name, channel), move || {
                    me.pump(stack, quiesce, probes, init, muxed_start, pctx);
                });
        }
        Ok(())
    }

    /// The pump: one task per assembled link, draining framed messages and
    /// routing them to channels. Starts in the legacy single-channel
    /// format (anchor channel implicit) unless the link resumed
    /// multiplexed; a [`mux::SENTINEL`] length escapes into tagged frames,
    /// after which OPEN/CLOSE manage the channel set dynamically.
    ///
    /// Parsing runs over a [`ChunkCursor`], which states the whole-message
    /// byte demand to the stack in one `read_chunks_min` call: the
    /// simulated socket parks once per message and is serviced at event
    /// time, so one wakeup drains everything available instead of the pump
    /// waking per delivered segment.
    fn pump(
        self: &Arc<Self>,
        stack: ReceiverStack,
        mut quiesce: Option<StripeQuiesce>,
        probes: Vec<RawLink>,
        init: Vec<(u64, u64, Option<Arc<ReceivePortInner>>)>,
        muxed_start: bool,
        ctx: NodeCtx,
    ) {
        let mut cur = ChunkCursor::new(stack, self.spec.block_size() as usize);
        // Epoch of the last committed RECONFIG this pump saw. Starts at 0
        // for every (re-)established pump: the link-level epoch is
        // monotonic for the link's life, so any epoch > 0 is acceptable
        // to a fresh pump and stale duplicates are rejected.
        let mut last_epoch = 0u64;
        let anchor = init[0].0;
        let mut live: HashMap<u64, LiveChan> = HashMap::new();
        {
            let mut st = self.rx.ack_state.lock();
            for (ch, seq, inner) in init {
                st.entry(ch).or_default().pumps += 1;
                live.insert(ch, LiveChan { seq, inner });
            }
        }
        let mut muxed = muxed_start;
        // Loop runs until EOF (read error) or a corrupt frame.
        while let Some(first) = cur.read_varint() {
            let (ch, len) = if !muxed {
                if first == mux::SENTINEL {
                    muxed = true;
                    continue;
                }
                if first > MAX_MESSAGE {
                    break; // corrupt
                }
                (anchor, first as usize)
            } else {
                match first {
                    mux::MSG => {
                        let Some(ch) = cur.read_varint() else {
                            break;
                        };
                        let Some(len) = cur.read_varint() else {
                            break;
                        };
                        if len > MAX_MESSAGE {
                            break;
                        }
                        (ch, len as usize)
                    }
                    mux::OPEN | mux::OPEN_BATCH => {
                        // OPEN carries one (channel, name) entry; OPEN_BATCH
                        // prefixes a count and carries `n` of them (the
                        // RESUME preamble's extras encoding).
                        let n = if first == mux::OPEN_BATCH {
                            let Some(n) = cur.read_varint() else {
                                break;
                            };
                            if n > 4096 {
                                break; // corrupt count
                            }
                            n
                        } else {
                            1
                        };
                        let mut ok = true;
                        for _ in 0..n {
                            let (Some(ch), Some(name_len)) = (cur.read_varint(), cur.read_varint())
                            else {
                                ok = false;
                                break;
                            };
                            if name_len > 4096 {
                                ok = false;
                                break;
                            }
                            let Some(name) = cur.read_exact_vec(name_len as usize) else {
                                ok = false;
                                break;
                            };
                            let Ok(name) = String::from_utf8(name) else {
                                ok = false;
                                break;
                            };
                            // Idempotent: a recovery replays OPENs for
                            // channels whose announcement the flap may have
                            // eaten, and a recovered batch is rewritten
                            // wholesale.
                            if let std::collections::hash_map::Entry::Vacant(slot) = live.entry(ch)
                            {
                                let seq = {
                                    let mut st = self.rx.ack_state.lock();
                                    st.entry(ch).or_default().pumps += 1;
                                    *self.rx.delivered.lock().entry(ch).or_insert(0)
                                };
                                slot.insert(LiveChan {
                                    seq,
                                    inner: (ctx.resolve)(&name),
                                });
                            }
                        }
                        if !ok {
                            break;
                        }
                        continue;
                    }
                    mux::CLOSE => {
                        let Some(ch) = cur.read_varint() else {
                            break;
                        };
                        if live.remove(&ch).is_some() {
                            self.channel_closed(ch);
                        }
                        continue;
                    }
                    mux::RECONFIG => {
                        // Live path reconfiguration (DESIGN.md §11): the
                        // sender flushed its stack to this frame boundary
                        // and is blocked on our ack. Validate, ack with
                        // the delivered watermarks (exactly-once
                        // handshake), and rebuild the receiver stack from
                        // the new parameters over the same connections.
                        let (Some(epoch), Some(stripes), Some(block), Some(level)) = (
                            cur.read_varint(),
                            cur.read_varint(),
                            cur.read_varint(),
                            cur.read_varint(),
                        ) else {
                            break;
                        };
                        // A stale/replayed epoch, impossible parameters,
                        // or leftover old-format bytes after the frame
                        // are corrupt: kill the pump. The sender's ack
                        // wait times out and recovery resynchronizes.
                        if epoch <= last_epoch
                            || stripes == 0
                            || stripes > probes.len() as u64
                            || block == 0
                            || block > MAX_MESSAGE
                            || level > u8::MAX as u64
                            || cur.avail != 0
                        {
                            break;
                        }
                        let params = PathParams {
                            stripes: stripes as u16,
                            block_size: block as u32,
                            compression_level: match level {
                                0 => None,
                                l => Some((l - 1) as u8),
                            },
                        };
                        // Quiesce the retired stack BEFORE acking: its
                        // per-stripe pump tasks own socket reads until
                        // they consume the sender's segment terminator
                        // (written right after the RECONFIG frame). Ack
                        // first and a still-parked pump would steal the
                        // new stack's first bytes.
                        if let Some(q) = quiesce.take() {
                            q.wait();
                        }
                        // Ack raw on stream 0, reverse direction (the
                        // resume-reply pattern): `[epoch][n][(channel,
                        // delivered)]*`, channels ascending.
                        let mut entries: Vec<(u64, u64)> = {
                            let d = self.rx.delivered.lock();
                            live.keys()
                                .map(|&ch| (ch, d.get(&ch).copied().unwrap_or(0)))
                                .collect()
                        };
                        entries.sort_unstable_by_key(|&(ch, _)| ch);
                        let mut fw = FrameWriter::new().u64(epoch).u64(entries.len() as u64);
                        for (ch, w) in &entries {
                            fw = fw.u64(*ch).u64(*w);
                        }
                        let mut w0 = probes[0].clone();
                        if fw.send(&mut w0).is_err() {
                            break;
                        }
                        // Rebuild over the first `stripes` connections;
                        // the rest stay parked. GTLS re-handshakes
                        // deterministically from the per-stream salt.
                        let spec = self.spec.clone().with_path(params);
                        let sec = ctx.security(&spec);
                        let links: Vec<RawLink> = probes[..params.stripes as usize].to_vec();
                        let Ok((stack, q)) = build_receiver_parts(
                            links,
                            &spec,
                            ctx.cpu.clone(),
                            sec.as_ref(),
                            &ctx.sched,
                        ) else {
                            break;
                        };
                        quiesce = q;
                        cur = ChunkCursor::new(stack, spec.block_size() as usize);
                        last_epoch = epoch;
                        continue;
                    }
                    _ => break, // corrupt tag
                }
            };
            let Some(data) = cur.read_exact_vec(len) else {
                break;
            };
            let Some(lc) = live.get_mut(&ch) else {
                break; // MSG on a channel never opened: corrupt
            };
            let seq = lc.seq;
            lc.seq += 1;
            // Exactly-once dedupe: advance the watermark under the lock,
            // then deliver. A message a previous incarnation of this
            // channel already delivered is dropped.
            let fresh = {
                let mut d = self.rx.delivered.lock();
                let e = d.entry(ch).or_insert(0);
                if seq < *e {
                    false
                } else {
                    *e = seq + 1;
                    true
                }
            };
            if !fresh {
                continue;
            }
            // `inner: None` channels are drained and dropped.
            if let Some(port) = lc.inner.clone() {
                let bytes = data.len();
                if port.msgq.push(ReadMessage::new(ch, data)).is_err() {
                    // That port closed. Keep draining its channel's bytes
                    // (the link's other channels live on), but if no live
                    // channel has a destination left, the pump has no
                    // reason to exist.
                    if let Some(lc) = live.get_mut(&ch) {
                        lc.inner = None;
                    }
                    if live.values().all(|l| l.inner.is_none()) {
                        break;
                    }
                } else {
                    port.note_delivered(ch, seq + 1, bytes);
                }
            }
        }
        *self.connections.lock() -= 1;
        // Clean EOF — every link closed gracefully — means the sender
        // flushed and closed its channels: they will never resume, so the
        // exactly-once watermarks and ack state can be garbage-collected.
        // Any aborted link keeps them for the resume handshake.
        let clean = probes.iter().all(|l| l.closed_cleanly());
        for ch in live.keys().copied().collect::<Vec<_>>() {
            self.pump_exit(ch, clean);
        }
    }

    /// A channel announced a clean in-band close (mux CLOSE frame): it
    /// will never resume, so its watermark and ack state go now unless a
    /// superseding pump still references them.
    fn channel_closed(&self, channel: u64) {
        let last = {
            let mut st = self.rx.ack_state.lock();
            match st.get_mut(&channel) {
                Some(e) => {
                    e.closed = true;
                    e.pumps -= 1;
                    e.pumps == 0
                }
                None => true,
            }
        };
        if last {
            self.rx.delivered.lock().remove(&channel);
            self.rx.ack_state.lock().remove(&channel);
        }
    }

    /// Ack bookkeeping after delivering one message: send a CACK when the
    /// byte cadence is crossed, and keep an idle-flush timer armed so a
    /// sender stalled mid-transfer still learns the watermark.
    fn note_delivered(self: &Arc<Self>, channel: u64, watermark: u64, bytes: usize) {
        let Some(ack) = &self.ack else { return };
        let mut send = false;
        let mut arm = false;
        {
            let mut st = self.rx.ack_state.lock();
            let e = st.entry(channel).or_default();
            e.total += bytes as u64;
            e.bytes_since += bytes;
            if e.bytes_since >= ack.every {
                e.bytes_since = 0;
                send = true;
            } else if !e.timer {
                e.timer = true;
                e.seen = e.total;
                arm = true;
            }
        }
        if send {
            ack.send(channel, watermark);
        }
        if arm {
            self.schedule_idle_flush(channel);
        }
    }

    fn schedule_idle_flush(self: &Arc<Self>, channel: u64) {
        let Some(ack) = &self.ack else { return };
        let weak = Arc::downgrade(self);
        ack.sched
            .call_at(ack.sched.now() + ACK_IDLE_FLUSH, move || {
                if let Some(me) = weak.upgrade() {
                    me.idle_flush(channel);
                }
            });
    }

    /// Idle-flush timer body (scheduler context — never blocks). Re-arms
    /// only while the channel is open and progressing, so a finished
    /// simulation still quiesces; sends only when genuinely idle, so
    /// fault-free transfers never emit timer-driven acks mid-flight.
    fn idle_flush(self: &Arc<Self>, channel: u64) {
        let Some(ack) = &self.ack else { return };
        let mut send = false;
        let mut rearm = false;
        {
            let mut st = self.rx.ack_state.lock();
            let Some(e) = st.get_mut(&channel) else {
                return;
            };
            if e.pumps == 0 {
                // Channel closed (or a resume not yet re-established):
                // stop. A resumed pump re-arms on its next delivery.
                e.timer = false;
            } else if e.total != e.seen {
                // Still progressing: the byte cadence covers acking.
                e.seen = e.total;
                rearm = true;
            } else if e.bytes_since > 0 {
                e.bytes_since = 0;
                e.timer = false;
                send = true;
            } else {
                e.timer = false;
            }
        }
        if send {
            let d = *self.rx.delivered.lock().get(&channel).unwrap_or(&0);
            ack.send(channel, d);
        }
        if rearm {
            self.schedule_idle_flush(channel);
        }
    }

    fn pump_exit(&self, channel: u64, clean: bool) {
        let (last, closed) = {
            let mut st = self.rx.ack_state.lock();
            match st.get_mut(&channel) {
                Some(e) => {
                    e.pumps -= 1;
                    (e.pumps == 0, e.closed)
                }
                None => (true, false),
            }
        };
        if last && (clean || closed) {
            self.rx.delivered.lock().remove(&channel);
            self.rx.ack_state.lock().remove(&channel);
        }
    }

    /// Messages waiting.
    pub fn queued(&self) -> usize {
        self.msgq.len()
    }

    pub fn connection_count(&self) -> u64 {
        *self.connections.lock()
    }
}

/// The receiving endpoint of a message channel.
pub struct ReceivePort {
    pub(crate) node: GridNode,
    pub(crate) inner: Arc<ReceivePortInner>,
}

impl ReceivePort {
    /// The port's registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Block (in simulated time) for the next message from any connection.
    pub fn receive(&self) -> io::Result<ReadMessage> {
        self.inner
            .msgq
            .pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "receive port closed"))
    }

    /// Non-blocking variant.
    pub fn try_receive(&self) -> Option<ReadMessage> {
        self.inner.msgq.try_pop()
    }

    /// Live incoming connections.
    pub fn connection_count(&self) -> u64 {
        self.inner.connection_count()
    }

    /// Messages waiting in the queue (non-blocking snapshot).
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Close the port: wakes blocked receivers and unregisters the name.
    pub fn close(self) {
        self.inner.msgq.close();
        let _ = self.node.ns().unregister_port(&self.inner.name);
        self.node.forget_port(&self.inner.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corrupt varint length near `u64::MAX` (e.g. from a damaged or
    /// hostile frame) must surface as an error from every typed reader, not
    /// overflow the cursor and panic.
    #[test]
    fn corrupt_length_fields_error_cleanly() {
        // varint encoding of u64::MAX followed by a few payload bytes.
        let mut data = Vec::new();
        gridzip::varint::put(&mut data, u64::MAX);
        data.extend_from_slice(b"xyz");
        let mut m = ReadMessage::new(1, data.clone());
        assert_eq!(
            m.read_str().unwrap_err().kind(),
            io::ErrorKind::InvalidData,
            "length beyond MAX_MESSAGE is invalid, not a panic"
        );
        // Direct read_bytes with a huge count: checked add, clean error.
        let mut m = ReadMessage::new(1, data);
        assert_eq!(
            m.read_bytes(usize::MAX).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // A plausible-but-too-long length must not read past the buffer.
        let mut short = Vec::new();
        gridzip::varint::put(&mut short, 64);
        short.extend_from_slice(b"only-9ch");
        let mut m = ReadMessage::new(1, short);
        assert!(m.read_str().is_err());
    }

    /// Truncated input leaves the reader usable (cursor not advanced past
    /// the end) and keeps failing rather than panicking.
    #[test]
    fn truncated_message_reads_fail_not_panic() {
        let mut m = ReadMessage::new(7, vec![0x80]); // dangling varint byte
        assert!(m.read_u64().is_err());
        assert!(m.read_str().is_err());
        assert!(m.read_bytes(2).is_err(), "read past the truncated end");
    }
}
