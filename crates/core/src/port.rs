//! Send and receive ports: the IPL's "one elementary communication
//! abstraction, unidirectional message channels" (paper §5).
//!
//! A [`SendPort`] connects to one or more named [`ReceivePort`]s (group
//! communication duplicates messages across connections); each connection
//! carries FIFO-ordered messages over a driver stack assembled per the
//! receive port's [`StackSpec`]. Message boundaries are explicit: data is
//! aggregated until `finish()` flushes the stack — the user-space
//! aggregation + explicit flush of paper §4.1.

use bytes::Bytes;
use gridsim_net::SimQueue;
use gridzip::varint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::drivers::{build_receiver, BlockWrite, RawLink, ReceiverStack, SenderStack, StackSpec};
use crate::establish::EstablishMethod;
use crate::node::{GridNode, NodeCtx};
use crate::pool::{BlockBuf, BlockPool, PoolStats};

/// Upper bound on a single message (sanity against corrupt frames).
pub const MAX_MESSAGE: u64 = 256 << 20;

/// A received message with typed readers.
pub struct ReadMessage {
    /// The sender's channel id (unique per logical connection).
    pub channel: u64,
    data: Vec<u8>,
    pos: usize,
}

impl ReadMessage {
    pub(crate) fn new(channel: u64, data: Vec<u8>) -> ReadMessage {
        ReadMessage {
            channel,
            data,
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn remaining(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn read_bytes(&mut self, n: usize) -> io::Result<&[u8]> {
        if self.pos + n > self.data.len() {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn read_u64(&mut self) -> io::Result<u64> {
        let (v, used) = varint::get(&self.data[self.pos..])
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        self.pos += used;
        Ok(v)
    }

    pub fn read_u32(&mut self) -> io::Result<u32> {
        let v = self.read_u64()?;
        u32::try_from(v).map_err(|_| io::ErrorKind::InvalidData.into())
    }

    pub fn read_str(&mut self) -> io::Result<String> {
        let n = self.read_u64()? as usize;
        let b = self.read_bytes(n)?;
        // Validate on the borrow; only valid strings pay for the copy.
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| io::ErrorKind::InvalidData.into())
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

/// A message under construction on a send port. Writes accumulate in a
/// pooled buffer; `finish()` freezes it into a refcounted block that every
/// connection's stack shares without copying.
pub struct WriteMessage<'a> {
    port: &'a mut SendPort,
    buf: BlockBuf,
}

impl WriteMessage<'_> {
    pub fn write_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        varint::put(&mut self.buf, v);
        self
    }

    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_u64(v as u64)
    }

    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Frame the message and flush it down every connection's stack. This
    /// is the explicit flush of §4.1: nothing hits the wire until a full
    /// buffer or this call.
    pub fn finish(self) -> io::Result<usize> {
        let len = self.buf.len();
        self.port.send_framed(self.buf.freeze())?;
        Ok(len)
    }
}

pub(crate) struct SendConnection {
    pub writer: SenderStack,
    /// The stack's block pool (aggregation/striping staging buffers).
    pub pool: BlockPool,
    pub method: EstablishMethod,
    pub peer_port: String,
    pub channel: u64,
}

/// Nominal checkout size of the message pool. Messages may grow past it
/// (a pooled buffer is an ordinary `Vec`); recycled buffers keep their
/// grown capacity, so steady-state sends of any size stop allocating.
const MSG_POOL_BLOCK: usize = 32 * 1024;

/// The sending endpoint of a message channel.
pub struct SendPort {
    pub(crate) node: GridNode,
    pub(crate) conns: Vec<SendConnection>,
    /// Pool backing [`WriteMessage`] buffers.
    msg_pool: BlockPool,
}

impl SendPort {
    pub(crate) fn new(node: GridNode) -> SendPort {
        SendPort {
            node,
            conns: Vec::new(),
            msg_pool: BlockPool::new(MSG_POOL_BLOCK),
        }
    }

    /// Connect to the named receive port, trying establishment methods in
    /// the decision-tree order; returns the method that succeeded.
    pub fn connect(&mut self, port_name: &str) -> io::Result<EstablishMethod> {
        let conn = self.node.establish_connection(port_name, None)?;
        let method = conn.method;
        self.conns.push(conn);
        Ok(method)
    }

    /// Connect with an explicit parallel-stream count, overriding the
    /// stream count the receive port registered (paper §8 future work:
    /// "selection of the optimal number of parallel TCP streams" — see the
    /// `autotune_streams` benchmark).
    pub fn connect_with_streams(
        &mut self,
        port_name: &str,
        streams: u16,
    ) -> io::Result<EstablishMethod> {
        let conn = self.node.establish_connection(port_name, Some(streams))?;
        let method = conn.method;
        self.conns.push(conn);
        Ok(method)
    }

    /// Number of live connections (group communication sends to all).
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Establishment method of connection `i`.
    pub fn method_of(&self, i: usize) -> Option<EstablishMethod> {
        self.conns.get(i).map(|c| c.method)
    }

    /// (peer port name, method, channel id) per connection — diagnostics.
    pub fn connections(&self) -> Vec<(String, EstablishMethod, u64)> {
        self.conns
            .iter()
            .map(|c| (c.peer_port.clone(), c.method, c.channel))
            .collect()
    }

    /// Start a new message.
    pub fn message(&mut self) -> WriteMessage<'_> {
        let buf = self.msg_pool.checkout();
        WriteMessage { port: self, buf }
    }

    /// Buffer-pool counters aggregated over the message pool and every
    /// connection's driver-stack pool.
    pub fn pool_stats(&self) -> PoolStats {
        let mut agg = self.msg_pool.stats();
        for c in &self.conns {
            let s = c.pool.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
        }
        agg
    }

    /// One-shot convenience: send `data` as a single message.
    pub fn send(&mut self, data: &[u8]) -> io::Result<()> {
        let mut m = self.message();
        m.write_bytes(data);
        m.finish()?;
        Ok(())
    }

    fn send_framed(&mut self, payload: Bytes) -> io::Result<()> {
        if self.conns.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "send port not connected",
            ));
        }
        let mut hdr = Vec::with_capacity(8);
        varint::put(&mut hdr, payload.len() as u64);
        for c in &mut self.conns {
            c.writer.write_all(&hdr)?;
            // Refcounted handoff: group communication clones the handle,
            // not the payload, and block-aligned stacks slice it straight
            // onto the wire.
            c.writer.write_block(payload.clone())?;
            c.writer.flush()?;
        }
        Ok(())
    }

    /// Flush and close all connections (graceful: peers see EOF after the
    /// last message).
    pub fn close(mut self) -> io::Result<()> {
        for c in &mut self.conns {
            c.writer.flush()?;
        }
        self.conns.clear();
        Ok(())
    }
}

/// Shared state of a receive port, reachable from accept paths.
pub struct ReceivePortInner {
    pub name: String,
    pub spec: StackSpec,
    msgq: SimQueue<ReadMessage>,
    /// Streams collected per channel until a connection is complete.
    pending: Mutex<HashMap<u64, PendingChannel>>,
    connections: Mutex<u64>,
}

struct PendingChannel {
    links: Vec<Option<RawLink>>,
    received: usize,
}

impl ReceivePortInner {
    pub(crate) fn new(name: String, spec: StackSpec) -> Arc<ReceivePortInner> {
        Arc::new(ReceivePortInner {
            name,
            spec,
            msgq: SimQueue::bounded(64),
            pending: Mutex::new(HashMap::new()),
            connections: Mutex::new(0),
        })
    }

    /// Register one raw link of a (possibly multi-stream) incoming
    /// connection; assembles and starts the receiver stack when all streams
    /// have arrived.
    pub(crate) fn add_raw_link(
        self: &Arc<Self>,
        ctx: &NodeCtx,
        channel: u64,
        idx: u16,
        total: u16,
        link: RawLink,
    ) -> io::Result<()> {
        if total == 0 || idx >= total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad stream preamble",
            ));
        }
        let ready = {
            let mut pending = self.pending.lock();
            let entry = pending.entry(channel).or_insert_with(|| PendingChannel {
                links: (0..total).map(|_| None).collect(),
                received: 0,
            });
            if entry.links.len() != total as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stream count mismatch",
                ));
            }
            let slot = &mut entry.links[idx as usize];
            if slot.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "duplicate stream index",
                ));
            }
            *slot = Some(link);
            entry.received += 1;
            if entry.received == total as usize {
                let entry = pending.remove(&channel).expect("entry exists");
                Some(
                    entry
                        .links
                        .into_iter()
                        .map(|l| l.expect("all present"))
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            }
        };
        if let Some(links) = ready {
            // Routed links arrive as a single stream regardless of the
            // spec; the preamble's `total` is authoritative.
            let spec = StackSpec {
                streams: total,
                ..self.spec.clone()
            };
            let stack = build_receiver(
                links,
                &spec,
                ctx.cpu.clone(),
                ctx.security(&spec).as_ref(),
                &ctx.sched,
            )?;
            *self.connections.lock() += 1;
            let me = Arc::clone(self);
            ctx.sched
                .spawn_daemon(format!("rp-pump-{}-{}", self.name, channel), move || {
                    me.pump(channel, stack);
                });
        }
        Ok(())
    }

    fn pump(&self, channel: u64, mut stack: ReceiverStack) {
        loop {
            let len = match varint::read_from(&mut stack) {
                Ok(l) if l <= MAX_MESSAGE => l as usize,
                _ => break, // EOF or corrupt
            };
            let mut data = vec![0u8; len];
            if stack.read_exact(&mut data).is_err() {
                break;
            }
            if self.msgq.push(ReadMessage::new(channel, data)).is_err() {
                break; // port closed
            }
        }
        *self.connections.lock() -= 1;
    }

    /// Messages waiting.
    pub fn queued(&self) -> usize {
        self.msgq.len()
    }

    pub fn connection_count(&self) -> u64 {
        *self.connections.lock()
    }
}

/// The receiving endpoint of a message channel.
pub struct ReceivePort {
    pub(crate) node: GridNode,
    pub(crate) inner: Arc<ReceivePortInner>,
}

impl ReceivePort {
    /// The port's registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Block (in simulated time) for the next message from any connection.
    pub fn receive(&self) -> io::Result<ReadMessage> {
        self.inner
            .msgq
            .pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "receive port closed"))
    }

    /// Non-blocking variant.
    pub fn try_receive(&self) -> Option<ReadMessage> {
        self.inner.msgq.try_pop()
    }

    /// Live incoming connections.
    pub fn connection_count(&self) -> u64 {
        self.inner.connection_count()
    }

    /// Messages waiting in the queue (non-blocking snapshot).
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Close the port: wakes blocked receivers and unregisters the name.
    pub fn close(self) {
        self.inner.msgq.close();
        let _ = self.node.ns().unregister_port(&self.inner.name);
        self.node.forget_port(&self.inner.name);
    }
}
