//! # netgrid — integrated wide-area communication for grids
//!
//! A Rust reproduction of the system presented in *"Wide-Area Communication
//! for Grids: An Integrated Solution to Connectivity, Performance and
//! Security Problems"* (Denis, Aumage, Hofman, Verstoep, Kielmann, Bal —
//! HPDC 2004): the NetIbis runtime, rebuilt over a deterministic network
//! simulator.
//!
//! The paper's two orthogonal concerns map onto two module groups:
//!
//! **Connection establishment** ([`establish`], [`nameservice`], [`relay`],
//! [`socks`], [`node`]): standard client/server TCP, TCP splicing
//! (simultaneous SYN, brokered over relay service links, with NAT port
//! prediction), SOCKS5 proxies, and routed messages through an
//! application-level relay — selected by the Figure-4 decision tree from
//! each node's [`profile::ConnectivityProfile`], with runtime fallback.
//!
//! **Link utilization** ([`drivers`], [`cpu`], [`port`]): block aggregation
//! with explicit flush (TCP_Block), parallel TCP streams, gridzip
//! compression, and GTLS encryption — freely composable filter drivers over
//! any established link, configured by a [`drivers::StackSpec`].
//!
//! ## Quickstart
//!
//! A complete run (see `examples/` at the workspace root for larger ones):
//!
//! ```
//! use gridsim_net::{topology, LinkParams, Sim, SockAddr};
//! use gridsim_tcp::SimHost;
//! use netgrid::*;
//! use std::time::Duration;
//!
//! // A simulated internet: two firewalled sites + public services host.
//! let sim = Sim::new(1);
//! let net = sim.net();
//! let wan = LinkParams::mbps(2.0, Duration::from_millis(8));
//! let (srv, a, b) = net.with(|w| {
//!     let mut grid = gridsim_net::topology::Grid::build(w, &[
//!         topology::SiteSpec::firewalled("x", 1, wan),
//!         topology::SiteSpec::firewalled("y", 1, wan),
//!     ]);
//!     let (srv, _) = grid.add_public_host(w, "services");
//!     (srv, grid.sites[0].hosts[0], grid.sites[1].hosts[0])
//! });
//! let hsrv = SimHost::new(&net, srv);
//! let env = GridEnv::new(net.clone(), SockAddr::new(hsrv.ip(), 563))
//!     .with_relay(SockAddr::new(hsrv.ip(), 600));
//! sim.spawn("services", move || {
//!     spawn_name_service(&hsrv, 563).unwrap();
//!     spawn_relay(&hsrv, 600).unwrap();
//! });
//! sim.run();
//!
//! let (ha, hb) = (SimHost::new(&net, a), SimHost::new(&net, b));
//! let env2 = env.clone();
//! sim.spawn("receiver", move || {
//!     let node = GridNode::join(&env2, hb, "y0", ConnectivityProfile::firewalled()).unwrap();
//!     let rp = node.create_receive_port("results", StackSpec::plain()).unwrap();
//!     assert_eq!(rp.receive().unwrap().as_slice(), b"hello grid");
//! });
//! sim.spawn("sender", move || {
//!     gridsim_net::ctx::sleep(Duration::from_millis(100));
//!     let node = GridNode::join(&env, ha, "x0", ConnectivityProfile::firewalled()).unwrap();
//!     let mut sp = node.create_send_port();
//!     // The decision tree picks TCP splicing: both sites are firewalled.
//!     assert_eq!(sp.connect("results").unwrap(), EstablishMethod::Splicing);
//!     sp.send(b"hello grid").unwrap();
//!     sp.close().unwrap();
//! });
//! sim.run();
//! ```

pub mod cpu;
pub mod drivers;
pub mod establish;
pub mod nameservice;
pub mod node;
pub mod pool;
pub mod port;
pub mod profile;
pub mod relay;
pub mod rpc;
pub(crate) mod session;
pub mod socks;
pub mod tune;
pub mod wire;

pub use cpu::{CpuModel, CpuRates, HostCpu};
pub use drivers::{PathParams, RawLink, StackSpec};
pub use establish::{choose_methods, EstablishMethod, LinkPurpose};
pub use nameservice::{spawn_name_service, GridId, NsClient};
pub use node::{GridEnv, GridNode};
pub use pool::{BlockBuf, BlockPool, PoolStats};
pub use port::{ReadMessage, ReceivePort, ResendOverflow, SendPort, WriteMessage};
pub use profile::{ConnectivityProfile, FirewallClass, NatClass};
pub use relay::{
    spawn_relay, spawn_relay_mesh, RelayClient, RelayConfig, RelayDelegate, RoutedStream,
};
pub use rpc::RpcClient;
pub use session::{walk_gauge_peak, walk_gauge_reset};
pub use socks::{socks_connect, spawn_proxy};
pub use tune::{PathControlConfig, PathController, PathStats};
