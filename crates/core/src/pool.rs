//! Reference-counted block buffer pool for the zero-copy data path.
//!
//! Every layer of the send stack (port framing, compression, striping,
//! aggregation) produces payload blocks. Before the pool each layer
//! allocated a fresh `Vec<u8>` per block and the simulated TCP copied it
//! again into its send queue. The pool closes that loop: a layer checks a
//! [`BlockBuf`] out, fills it, and [`BlockBuf::freeze`]s it into a
//! [`Bytes`] handle that every downstream layer shares by refcount. When
//! the last handle drops — typically after simtcp has ACK-released the
//! block — the backing storage returns to the pool for the next block.
//!
//! Invariants (exercised by `tests/pool_roundtrip.rs`):
//! * a buffer is never handed out twice while any `Bytes` view of it is
//!   alive — recycling happens only from the owner's `Drop`, which the
//!   refcount runs after the last view dies;
//! * pooling never changes bytes on the wire: a recycled buffer is
//!   cleared before reuse and `freeze` exposes exactly the written prefix.

use bytes::Bytes;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many spare buffers a pool retains. Deep enough for one window of
/// in-flight blocks per connection; beyond that, freeing is cheaper than
/// hoarding.
const DEFAULT_MAX_FREE: usize = 64;

struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    /// Nominal block size; checkouts are pre-reserved to this.
    block: usize,
    max_free: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Shared pool of reusable block-sized buffers. Cloning is a refcount
/// bump; all clones draw from and recycle into the same free list.
#[derive(Clone)]
pub struct BlockPool {
    inner: Arc<PoolInner>,
}

/// Counters for observability (`pool_hits` / `pool_misses` on link stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the free list.
    pub hits: u64,
    /// Checkouts that had to allocate.
    pub misses: u64,
}

impl BlockPool {
    pub fn new(block: usize) -> BlockPool {
        BlockPool::with_max_free(block, DEFAULT_MAX_FREE)
    }

    pub fn with_max_free(block: usize, max_free: usize) -> BlockPool {
        BlockPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                block,
                max_free,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Nominal block size buffers are reserved to.
    pub fn block_size(&self) -> usize {
        self.inner.block
    }

    /// Check a cleared buffer out of the pool (or allocate on miss).
    pub fn checkout(&self) -> BlockBuf {
        let recycled = self.inner.free.lock().pop();
        let vec = match recycled {
            Some(v) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.block)
            }
        };
        debug_assert!(vec.is_empty(), "recycled buffer must be cleared");
        BlockBuf {
            vec: Some(vec),
            pool: self.clone(),
        }
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently idle on the free list.
    pub fn free_len(&self) -> usize {
        self.inner.free.lock().len()
    }

    fn recycle(&self, mut vec: Vec<u8>) {
        vec.clear();
        let mut free = self.inner.free.lock();
        if free.len() < self.inner.max_free {
            free.push(vec);
        }
    }
}

/// A checked-out, writable block buffer. Deref-cheap to `Vec<u8>` so the
/// filling code reads like it did before pooling. Returns its storage to
/// the pool when dropped unfrozen, or — after [`freeze`](BlockBuf::freeze)
/// — when the last `Bytes` view dies.
pub struct BlockBuf {
    // Option only so Drop and freeze() can move the Vec out.
    vec: Option<Vec<u8>>,
    pool: BlockPool,
}

impl BlockBuf {
    /// Freeze into an immutable, refcounted view. Zero-copy: the `Bytes`
    /// wraps this buffer's storage directly and the pool recovers it via
    /// the owner's drop once the last clone/slice is gone.
    pub fn freeze(mut self) -> Bytes {
        let vec = self.vec.take().expect("buf invariant");
        if vec.is_empty() {
            // Bytes::from_owner would pin an empty Vec until the view
            // drops; hand the storage straight back instead.
            self.pool.recycle(vec);
            return Bytes::new();
        }
        Bytes::from_owner(Recycled {
            vec,
            pool: self.pool.clone(),
        })
    }
}

impl Deref for BlockBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.vec.as_ref().expect("buf invariant")
    }
}

impl DerefMut for BlockBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.vec.as_mut().expect("buf invariant")
    }
}

impl Drop for BlockBuf {
    fn drop(&mut self) {
        if let Some(vec) = self.vec.take() {
            self.pool.recycle(vec);
        }
    }
}

/// Owner handed to `Bytes::from_owner`; dropping it (last view gone)
/// returns the storage to its pool.
struct Recycled {
    vec: Vec<u8>,
    pool: BlockPool,
}

impl AsRef<[u8]> for Recycled {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl Drop for Recycled {
    fn drop(&mut self) {
        self.pool.recycle(std::mem::take(&mut self.vec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_fill_freeze_recycle() {
        let pool = BlockPool::new(64);
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"block payload");
        let bytes = buf.freeze();
        assert_eq!(&bytes[..], b"block payload");
        assert_eq!(pool.free_len(), 0, "storage pinned while view alive");
        drop(bytes);
        assert_eq!(pool.free_len(), 1, "storage recycled after last view");
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 1 });
        let b2 = pool.checkout();
        assert!(b2.is_empty(), "recycled buffer is cleared");
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn slices_pin_storage_until_all_dropped() {
        let pool = BlockPool::new(16);
        let mut buf = pool.checkout();
        buf.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let whole = buf.freeze();
        let head = whole.slice(..4);
        let tail = whole.slice(4..);
        drop(whole);
        drop(head);
        assert_eq!(pool.free_len(), 0, "tail slice still pins storage");
        assert_eq!(&tail[..], &[5, 6, 7, 8]);
        drop(tail);
        assert_eq!(pool.free_len(), 1);
    }

    #[test]
    fn unfrozen_drop_recycles() {
        let pool = BlockPool::new(16);
        let mut buf = pool.checkout();
        buf.push(9);
        drop(buf);
        assert_eq!(pool.free_len(), 1);
    }

    #[test]
    fn empty_freeze_recycles_immediately() {
        let pool = BlockPool::new(16);
        let b = pool.checkout().freeze();
        assert!(b.is_empty());
        assert_eq!(pool.free_len(), 1);
    }

    #[test]
    fn free_list_bounded() {
        let pool = BlockPool::with_max_free(8, 2);
        let bufs: Vec<_> = (0..4).map(|_| pool.checkout()).collect();
        drop(bufs);
        assert_eq!(pool.free_len(), 2, "excess buffers are freed, not hoarded");
    }
}
