//! Path tuning: the telemetry sample type and the deterministic control
//! loop that turns samples into RECONFIG decisions (DESIGN.md §11).
//!
//! The split mirrors the paper's observation that tuning knowledge (how
//! many streams, what block size, whether to compress) is a property of
//! the *path*, not of the application: [`PathStats`] is what the session
//! layer can observe about a path, and [`PathController`] is a pure
//! decision core — no clocks, no I/O — that maps a sample stream to
//! parameter changes. The same core drives the live per-link daemon
//! (`GridEnv::with_path_control`) and the offline tuning binaries
//! (`autotune_streams`, `adaptive_compression`), so there is exactly one
//! tuning policy in the tree.

use std::time::Duration;

use crate::drivers::PathParams;

// ----------------------------------------------------------- telemetry

/// One transport-level sample of a link's active stripes, aggregated by
/// `SharedLink::sample_stats`. Counters are cumulative (per-connection
/// totals summed over stripes); consumers difference adjacent samples.
/// A recovery swaps the underlying connections and the counters restart
/// from zero — consumers must treat a backwards step as an empty window.
#[derive(Clone, Copy, Debug, Default)]
pub struct PathStats {
    /// Sample time (simulation micros).
    pub at_micros: u64,
    /// Total bytes handed to the transport across active stripes.
    pub bytes_sent: u64,
    /// Retransmission timeouts across active stripes.
    pub rtx_timeouts: u64,
    /// Fast retransmits across active stripes.
    pub fast_retransmits: u64,
    /// Mean smoothed RTT over stripes that have a sample, in micros.
    pub srtt_micros: u64,
    /// Bytes sitting unacknowledged in transport send buffers. Near zero
    /// means the network drains faster than the application (or the
    /// compressor) can fill it — the path is not the bottleneck.
    pub tx_backlog: u64,
    /// Active stripe count at sample time.
    pub stripes: u16,
    /// Parameters the sampled stack was built from.
    pub params: PathParams,
}

impl PathStats {
    /// Total loss-recovery events (timeouts + fast retransmits).
    pub fn rtx_events(&self) -> u64 {
        self.rtx_timeouts + self.fast_retransmits
    }
}

/// Goodput between two cumulative samples, in bytes/second. Returns
/// `None` for an empty or backwards window (counter reset by recovery).
pub fn rate_between(prev: &PathStats, cur: &PathStats) -> Option<u64> {
    let dt = cur.at_micros.checked_sub(prev.at_micros)?;
    if dt == 0 || cur.bytes_sent < prev.bytes_sent {
        return None;
    }
    Some((cur.bytes_sent - prev.bytes_sent).saturating_mul(1_000_000) / dt)
}

// ------------------------------------------------------------- ladders

/// Stripe counts the controller walks and the offline sweep measures —
/// the Figure-6 sweep points from the paper's parallel-stream study.
pub const STRIPE_LADDER: [u16; 7] = [1, 2, 4, 6, 8, 12, 16];

/// The next rung above `cur`, capped at `max`.
pub fn next_stripe(cur: u16, max: u16) -> Option<u16> {
    STRIPE_LADDER.iter().copied().find(|&s| s > cur && s <= max)
}

/// Compression settings the offline sweep measures, cheapest first.
pub const COMPRESSION_LADDER: [Option<u8>; 4] = [None, Some(1), Some(3), Some(6)];

/// CPU-cost rank of a parameter set, for tie-breaking: fewer stripes and
/// less compression are cheaper. Block size does not enter (it is a
/// latency/loss knob, not a CPU knob).
fn cost(p: &PathParams) -> (u16, u8) {
    (p.stripes, p.compression_level.map(|l| l + 1).unwrap_or(0))
}

/// Offline selection over measured candidates `(params, bytes/sec)`:
/// the cheapest configuration within `gain_pct` percent of the best
/// rate wins. Deterministic: ties keep input order. Shared by the
/// `autotune_streams` and `adaptive_compression` binaries.
pub fn pick_best(results: &[(PathParams, u64)], gain_pct: u64) -> Option<PathParams> {
    let best = results.iter().map(|&(_, r)| r).max()?;
    results
        .iter()
        .filter(|&&(_, r)| r.saturating_mul(100 + gain_pct) >= best.saturating_mul(100))
        .min_by_key(|(p, _)| cost(p))
        .map(|&(p, _)| p)
}

// ---------------------------------------------------------- controller

/// Tuning knobs for [`PathController`].
#[derive(Clone, Copy, Debug)]
pub struct PathControlConfig {
    /// Sampling cadence of the per-link daemon.
    pub interval: Duration,
    /// Steady windows required after any change before the next probe
    /// (hysteresis — a committed change must prove itself this long).
    pub cooldown: u32,
    /// Percent goodput gain a probe must show over its baseline window
    /// to be kept; below this it is reverted.
    pub probe_gain_pct: u64,
    /// Loss-recovery events in one window that count as congestion.
    pub loss_rtx: u64,
    /// Floor for the multiplicative block-size decrease under loss.
    pub min_block: u32,
    /// Ceiling for stripe probes.
    pub max_stripes: u16,
    /// Send-buffer occupancy (bytes) below which the path is considered
    /// application/CPU-bound rather than network-bound.
    pub idle_backlog: u64,
}

impl Default for PathControlConfig {
    fn default() -> Self {
        PathControlConfig {
            interval: Duration::from_millis(250),
            cooldown: 3,
            probe_gain_pct: 8,
            loss_rtx: 3,
            min_block: 4 * 1024,
            max_stripes: 16,
            idle_backlog: 4 * 1024,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Mode {
    Steady,
    /// A speculative change is live; next window decides keep-or-revert.
    Probing {
        prev: PathParams,
        baseline: u64,
    },
}

/// What kind of speculative change a probe made (for re-probe blocking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProbeKind {
    StripeUp,
    CompressionDown,
}

/// Deterministic AIMD-style control loop over [`PathStats`] samples.
///
/// Policy (DESIGN.md §11):
/// - **Loss** (≥ `loss_rtx` recovery events in a window): halve the block
///   size toward `min_block`; a live probe is reverted instead.
/// - **Probe up**: after `cooldown` clean windows with the send buffer
///   backed up (network-bound), try the next stripe rung; keep it only
///   if the next window's goodput beats the baseline by `probe_gain_pct`.
/// - **Shed CPU**: if compressing while the send buffer idles (the wire
///   drains faster than the compressor fills), step compression down.
/// - **Hysteresis**: a reverted probe is blocked until measured goodput
///   moves ±25% from the rate at which it failed — the environment must
///   change before the same probe is retried.
///
/// Pure state machine: call [`on_sample`](Self::on_sample) with each
/// sample; a `Some(params)` return is a request to reconfigure the path.
/// The caller reports the actually-applied parameters back via
/// [`applied`](Self::applied) (a reconfigure can fail mid-flight and
/// leave the old stack in place).
pub struct PathController {
    cfg: PathControlConfig,
    /// Parameters the controller believes are live on the path.
    params: PathParams,
    mode: Mode,
    cooldown: u32,
    last: Option<PathStats>,
    /// A failed probe of this kind is not retried until goodput shifts
    /// ±25% from the recorded rate.
    blocked: Option<(ProbeKind, u64)>,
}

impl PathController {
    pub fn new(initial: PathParams, cfg: PathControlConfig) -> PathController {
        PathController {
            cfg,
            params: initial,
            mode: Mode::Steady,
            // First decision only after a full cooldown of clean windows.
            cooldown: cfg.cooldown,
            last: None,
            blocked: None,
        }
    }

    pub fn config(&self) -> &PathControlConfig {
        &self.cfg
    }

    /// Parameters the controller currently believes are live.
    pub fn params(&self) -> PathParams {
        self.params
    }

    /// Report what the path is actually running (after a reconfigure
    /// attempt, or after a recovery reset the path to its establishment
    /// spec). Resynchronizes the controller without emitting anything.
    pub fn applied(&mut self, live: PathParams) {
        if live != self.params {
            self.params = live;
            self.mode = Mode::Steady;
            self.cooldown = self.cfg.cooldown;
        }
    }

    /// Feed one sample; `Some(params)` asks the caller to reconfigure.
    pub fn on_sample(&mut self, s: PathStats) -> Option<PathParams> {
        let prev_sample = self.last.replace(s);
        let prev_sample = prev_sample?;
        let Some(rate) = rate_between(&prev_sample, &s) else {
            // Counter reset (recovery) or zero-length window: treat as a
            // disturbance — hold steady and restart the cooldown.
            self.mode = Mode::Steady;
            self.cooldown = self.cfg.cooldown;
            return None;
        };
        let drtx = s.rtx_events().saturating_sub(prev_sample.rtx_events());

        // Congestion beats everything: revert a live probe, else shrink
        // the block so a loss costs less to retransmit.
        if drtx >= self.cfg.loss_rtx {
            self.cooldown = self.cfg.cooldown;
            if let Mode::Probing { prev, .. } = self.mode {
                self.mode = Mode::Steady;
                return self.revert_to(prev, rate);
            }
            let shrunk = (self.params.block_size / 2).max(self.cfg.min_block);
            if shrunk < self.params.block_size {
                self.params.block_size = shrunk;
                return Some(self.params);
            }
            return None;
        }

        // Resolve a live probe against its baseline window.
        if let Mode::Probing { prev, baseline } = self.mode {
            self.mode = Mode::Steady;
            self.cooldown = self.cfg.cooldown;
            let needed = baseline.saturating_mul(100 + self.cfg.probe_gain_pct) / 100;
            if rate >= needed {
                self.blocked = None; // the environment rewards probing again
                return None; // keep — params are already live
            }
            return self.revert_to(prev, rate);
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }

        // Unblock a failed probe once goodput moves ±25% from where it
        // failed — the path has changed, old conclusions are stale.
        if let Some((_, at_rate)) = self.blocked {
            if rate.saturating_mul(4) > at_rate.saturating_mul(5)
                || rate.saturating_mul(5) < at_rate.saturating_mul(4)
            {
                self.blocked = None;
            }
        }

        let app_bound = s.tx_backlog <= self.cfg.idle_backlog;

        // CPU shed: compressing while the wire idles means the compressor
        // is the bottleneck — step it down one level.
        if let Some(level) = self.params.compression_level {
            if app_bound && !self.is_blocked(ProbeKind::CompressionDown) {
                let prev = self.params;
                self.params.compression_level = if level > 1 { Some(level - 1) } else { None };
                self.mode = Mode::Probing {
                    prev,
                    baseline: rate,
                };
                return Some(self.params);
            }
        }

        // Headroom probe: network-bound and clean — try the next rung.
        if !app_bound && !self.is_blocked(ProbeKind::StripeUp) {
            if let Some(next) = next_stripe(self.params.stripes, self.cfg.max_stripes) {
                let prev = self.params;
                self.params.stripes = next;
                self.mode = Mode::Probing {
                    prev,
                    baseline: rate,
                };
                return Some(self.params);
            }
        }

        None
    }

    fn is_blocked(&self, kind: ProbeKind) -> bool {
        matches!(self.blocked, Some((k, _)) if k == kind)
    }

    fn revert_to(&mut self, prev: PathParams, rate: u64) -> Option<PathParams> {
        let kind = if prev.stripes != self.params.stripes {
            ProbeKind::StripeUp
        } else {
            ProbeKind::CompressionDown
        };
        self.blocked = Some((kind, rate));
        if prev == self.params {
            return None;
        }
        self.params = prev;
        Some(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PathControlConfig {
        PathControlConfig {
            cooldown: 1,
            ..PathControlConfig::default()
        }
    }

    fn sample(at_ms: u64, bytes: u64, rtx: u64, backlog: u64) -> PathStats {
        PathStats {
            at_micros: at_ms * 1000,
            bytes_sent: bytes,
            rtx_timeouts: rtx,
            tx_backlog: backlog,
            ..PathStats::default()
        }
    }

    /// Drive the controller to the end of its initial cooldown.
    fn warmed(ctl: &mut PathController, bytes_per_ms: u64, backlog: u64) -> (u64, u64) {
        let mut t = 0;
        let mut b = 0;
        ctl.on_sample(sample(t, b, 0, backlog));
        for _ in 0..ctl.config().cooldown {
            t += 100;
            b += bytes_per_ms * 100;
            assert_eq!(ctl.on_sample(sample(t, b, 0, backlog)), None);
        }
        (t, b)
    }

    #[test]
    fn probes_stripes_up_when_network_bound() {
        let mut ctl = PathController::new(PathParams::default(), cfg());
        let (mut t, mut b) = warmed(&mut ctl, 1000, 64 * 1024);
        t += 100;
        b += 100_000;
        let p = ctl.on_sample(sample(t, b, 0, 64 * 1024)).expect("probe");
        assert_eq!(p.stripes, 2);
        // Probe pays off: 30% more goodput next window → kept.
        t += 100;
        b += 130_000;
        assert_eq!(ctl.on_sample(sample(t, b, 0, 64 * 1024)), None);
        assert_eq!(ctl.params().stripes, 2);
    }

    #[test]
    fn reverts_flat_probe_and_blocks_retry() {
        let mut ctl = PathController::new(PathParams::default(), cfg());
        let (mut t, mut b) = warmed(&mut ctl, 1000, 64 * 1024);
        t += 100;
        b += 100_000;
        assert!(ctl.on_sample(sample(t, b, 0, 64 * 1024)).is_some());
        // Flat goodput → revert to 1 stripe.
        t += 100;
        b += 100_000;
        let p = ctl.on_sample(sample(t, b, 0, 64 * 1024)).expect("revert");
        assert_eq!(p.stripes, 1);
        // Same conditions: the failed probe must NOT be retried.
        for _ in 0..6 {
            t += 100;
            b += 100_000;
            assert_eq!(ctl.on_sample(sample(t, b, 0, 64 * 1024)), None);
        }
        // Goodput collapses 50% — environment changed, probe unblocked.
        for _ in 0..4 {
            t += 100;
            b += 40_000;
        }
        let got = ctl.on_sample(sample(t, b, 0, 64 * 1024));
        assert_eq!(got.map(|p| p.stripes), Some(2));
    }

    #[test]
    fn loss_halves_block_size_to_floor() {
        let mut ctl = PathController::new(PathParams::default(), cfg());
        let (mut t, mut b) = warmed(&mut ctl, 1000, 64 * 1024);
        let mut rtx = 0;
        let mut expect = PathParams::default().block_size;
        // Loss acts immediately, ignoring cooldown: every lossy window
        // halves the block until the floor.
        while expect > ctl.config().min_block {
            t += 100;
            b += 100_000;
            rtx += 10;
            let p = ctl.on_sample(sample(t, b, rtx, 64 * 1024)).expect("shrink");
            expect = (expect / 2).max(ctl.config().min_block);
            assert_eq!(p.block_size, expect);
        }
        // At the floor, further loss changes nothing.
        t += 100;
        b += 100_000;
        rtx += 10;
        assert_eq!(ctl.on_sample(sample(t, b, rtx, 64 * 1024)), None);
        assert_eq!(ctl.params().block_size, ctl.config().min_block);
    }

    #[test]
    fn sheds_compression_when_app_bound() {
        let initial = PathParams {
            compression_level: Some(1),
            ..PathParams::default()
        };
        let mut ctl = PathController::new(initial, cfg());
        // Tiny backlog: wire drains faster than the compressor fills.
        let (mut t, mut b) = warmed(&mut ctl, 1000, 0);
        t += 100;
        b += 100_000;
        let p = ctl.on_sample(sample(t, b, 0, 0)).expect("shed");
        assert_eq!(p.compression_level, None);
        // 20% faster once the CPU is free → kept.
        t += 100;
        b += 120_000;
        assert_eq!(ctl.on_sample(sample(t, b, 0, 0)), None);
        assert_eq!(ctl.params().compression_level, None);
    }

    #[test]
    fn counter_reset_treated_as_disturbance() {
        let mut ctl = PathController::new(PathParams::default(), cfg());
        let (t, _) = warmed(&mut ctl, 1000, 64 * 1024);
        // Recovery swapped the sockets: bytes_sent rewinds to near zero.
        assert_eq!(ctl.on_sample(sample(t + 100, 5, 0, 64 * 1024)), None);
        // Cooldown restarted — no probe on the very next window.
        assert_eq!(ctl.on_sample(sample(t + 200, 100_005, 0, 64 * 1024)), None);
    }

    #[test]
    fn pick_best_prefers_cheap_within_margin() {
        let p = |stripes: u16, level: Option<u8>| PathParams {
            stripes,
            compression_level: level,
            ..PathParams::default()
        };
        // 8 stripes barely beats 4; within 8% the cheaper config wins.
        let results = [(p(1, None), 400), (p(4, None), 970), (p(8, None), 1000)];
        assert_eq!(pick_best(&results, 8), Some(p(4, None)));
        // A real 30% gap is honoured.
        let results = [(p(1, None), 700), (p(4, None), 1000)];
        assert_eq!(pick_best(&results, 8), Some(p(4, None)));
        // Compression that doesn't pay loses to plain.
        let results = [(p(1, None), 1000), (p(1, Some(6)), 1010)];
        assert_eq!(pick_best(&results, 8), Some(p(1, None)));
        assert_eq!(pick_best(&[], 8), None);
    }

    #[test]
    fn stripe_ladder_walk() {
        assert_eq!(next_stripe(1, 16), Some(2));
        assert_eq!(next_stripe(2, 16), Some(4));
        assert_eq!(next_stripe(4, 4), None);
        assert_eq!(next_stripe(16, 16), None);
        assert_eq!(next_stripe(3, 16), Some(4));
    }
}
