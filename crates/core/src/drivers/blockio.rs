//! CPU-charging I/O adapters and the zero-copy block I/O layer.
//!
//! Drivers that burn host CPU (compression, encryption, block copies) wrap
//! their inner stream in these adapters: every byte moved is charged to the
//! host's [`HostCpu`] at the configured 2004-era rate, so filter costs show
//! up in simulated time exactly where the paper's evaluation saw them.
//!
//! [`BlockWrite`]/[`BlockRead`] extend `Write`/`Read` with whole-block
//! handoff of pooled [`Bytes`] buffers. Layers that can move a block
//! without touching its bytes (aggregation passthrough, striping, the
//! simulated TCP send queue) override the methods; byte-transforming
//! layers (compression, encryption) keep the copying defaults, which
//! route through `Write::write`/`Read::read` so CPU charging — and hence
//! simulated time — is identical on either path.

use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

use crate::cpu::HostCpu;
use crate::pool::{BlockBuf, BlockPool};

/// A byte sink that can also accept whole blocks by ownership handoff.
pub trait BlockWrite: Write {
    /// Write one whole block. The default copies via `write_all`, which is
    /// correct for every byte-stream writer; zero-copy writers override.
    fn write_block(&mut self, block: Bytes) -> io::Result<()> {
        self.write_all(&block)
    }

    /// Submit a run of blocks in one call. Byte-stream equivalent to
    /// `write_block` per element; vectored writers override so the whole
    /// run crosses the layer (and ultimately the simulated socket) in a
    /// single submission instead of one handoff per block.
    fn write_blocks(&mut self, blocks: &[Bytes]) -> io::Result<()> {
        for b in blocks {
            self.write_block(b.clone())?;
        }
        Ok(())
    }
}

/// A byte source that can also hand data out as refcounted chunks.
pub trait BlockRead: Read {
    /// Pull up to `max` bytes, appending them to `out` as chunks. Returns
    /// the byte count; `Ok(0)` means EOF. The default copies through one
    /// `read` call; zero-copy readers override.
    fn read_chunks(&mut self, max: usize, out: &mut Vec<Bytes>) -> io::Result<usize> {
        copy_read_chunks(self, max, out)
    }

    /// Pull at least `min` bytes unless EOF intervenes, with up to `max`
    /// bytes of read-ahead past the demand. Returns the byte count
    /// appended; less than `min` means EOF. Stating the real demand lets a
    /// demand-aware source (the simulated TCP socket) satisfy it with one
    /// parked wait serviced at event time instead of one wakeup per
    /// arriving chunk. The default loops `read_chunks`.
    fn read_chunks_min(
        &mut self,
        min: usize,
        max: usize,
        out: &mut Vec<Bytes>,
    ) -> io::Result<usize> {
        let mut got = 0;
        while got < min {
            let n = self.read_chunks((min - got).max(max), out)?;
            if n == 0 {
                break;
            }
            got += n;
        }
        Ok(got)
    }
}

/// The copying `read_chunks` fallback, callable by name from enum impls
/// that delegate only some variants to a zero-copy source.
pub fn copy_read_chunks<R: Read + ?Sized>(
    r: &mut R,
    max: usize,
    out: &mut Vec<Bytes>,
) -> io::Result<usize> {
    let mut v = vec![0u8; max.min(64 * 1024)];
    let n = r.read(&mut v)?;
    if n == 0 {
        return Ok(0);
    }
    v.truncate(n);
    out.push(Bytes::from(v));
    Ok(n)
}

// Trait-object plumbing: the assembled stacks are boxed, and a boxed
// block writer/reader must forward the block methods (the std blanket
// `Write for Box<W>` would silently fall back to the copying defaults).
impl BlockWrite for Box<dyn BlockWrite + Send> {
    fn write_block(&mut self, block: Bytes) -> io::Result<()> {
        (**self).write_block(block)
    }
    fn write_blocks(&mut self, blocks: &[Bytes]) -> io::Result<()> {
        (**self).write_blocks(blocks)
    }
}

impl BlockRead for Box<dyn BlockRead + Send> {
    fn read_chunks(&mut self, max: usize, out: &mut Vec<Bytes>) -> io::Result<usize> {
        (**self).read_chunks(max, out)
    }
    fn read_chunks_min(
        &mut self,
        min: usize,
        max: usize,
        out: &mut Vec<Bytes>,
    ) -> io::Result<usize> {
        (**self).read_chunks_min(min, max, out)
    }
}

/// `Vec<u8>` as a block sink (tests and in-memory assembly).
impl BlockWrite for Vec<u8> {}

/// Granularity of CPU charging: cost is charged per chunk, interleaved
/// with the writes, modelling a filter that processes data incrementally
/// (as zlib does) rather than stalling for a whole message up front.
const CPU_CHUNK: usize = 8 * 1024;

/// A writer charging CPU time per byte written before passing it on.
pub struct CpuWrite<W> {
    inner: W,
    cpu: HostCpu,
    rate: f64,
}

impl<W: Write> CpuWrite<W> {
    pub fn new(inner: W, cpu: HostCpu, rate: f64) -> CpuWrite<W> {
        CpuWrite { inner, cpu, rate }
    }

    pub fn into_inner(self) -> W {
        self.inner
    }

    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for CpuWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for chunk in buf.chunks(CPU_CHUNK) {
            self.cpu.consume(chunk.len(), self.rate);
            self.inner.write_all(chunk)?;
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader charging CPU time per byte read from the inner stream.
pub struct CpuRead<R> {
    inner: R,
    cpu: HostCpu,
    rate: f64,
}

impl<R: Read> CpuRead<R> {
    pub fn new(inner: R, cpu: HostCpu, rate: f64) -> CpuRead<R> {
        CpuRead { inner, cpu, rate }
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for CpuRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.cpu.consume(n, self.rate);
        Ok(n)
    }
}

// The crypto filters transform every byte, so the copying defaults are the
// honest model: block handoff through them still pays the per-chunk CPU
// charge via `Write::write`/`Read::read`.
impl<W: Write> BlockWrite for CpuWrite<W> {}
impl<R: Read> BlockRead for CpuRead<R> {}

// Likewise the compression layer: blocks entering it are recoded, so the
// copying defaults route them through the framing path unchanged.
impl<W: Write> BlockWrite for gridzip::CompressWriter<W> {}
impl<R: Read> BlockRead for gridzip::DecompressReader<R> {}

/// TCP_Block aggregation (paper §4.1) over a [`BlockWrite`] sink: small
/// writes coalesce into pool-backed blocks; block-sized writes pass through
/// zero-copy. Buffering semantics mirror `std::io::BufWriter` exactly (same
/// flush points, same passthrough threshold) so the wire byte stream is
/// unchanged from the `BufWriter` it replaces.
pub struct BlockWriter<W: BlockWrite> {
    inner: W,
    pool: BlockPool,
    buf: BlockBuf,
    /// Reused staging for vectored runs (`write_blocks`), so a batched
    /// submit costs no allocation in steady state.
    run: Vec<Bytes>,
}

impl<W: BlockWrite> BlockWriter<W> {
    pub fn new(inner: W, pool: BlockPool) -> BlockWriter<W> {
        let buf = pool.checkout();
        BlockWriter {
            inner,
            pool,
            buf,
            run: Vec::new(),
        }
    }

    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    fn flush_buf(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            let full = std::mem::replace(&mut self.buf, self.pool.checkout());
            self.inner.write_block(full.freeze())?;
        }
        Ok(())
    }
}

impl<W: BlockWrite> Write for BlockWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let cap = self.pool.block_size();
        if self.buf.len() + data.len() > cap {
            self.flush_buf()?;
        }
        if data.len() >= cap {
            // BufWriter passthrough: forward directly, partial writes
            // propagate to the caller's write_all loop.
            self.inner.write(data)
        } else {
            self.buf.extend_from_slice(data);
            Ok(data.len())
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_buf()?;
        self.inner.flush()
    }
}

impl<W: BlockWrite> BlockWrite for BlockWriter<W> {
    fn write_block(&mut self, block: Bytes) -> io::Result<()> {
        let cap = self.pool.block_size();
        if self.buf.len() + block.len() > cap {
            self.flush_buf()?;
        }
        if block.len() >= cap {
            // Zero-copy passthrough of an already-assembled block.
            self.inner.write_block(block)
        } else {
            self.buf.extend_from_slice(&block);
            Ok(())
        }
    }

    /// Vectored submit: the same buffering decisions as `write_block` per
    /// element (identical byte stream), but every block the run produces —
    /// frozen coalescing buffers and passthrough blocks alike — goes to the
    /// inner sink in ONE `write_blocks` call, so consecutive frames share
    /// one simulated-socket submission.
    fn write_blocks(&mut self, blocks: &[Bytes]) -> io::Result<()> {
        let cap = self.pool.block_size();
        let mut run = std::mem::take(&mut self.run);
        debug_assert!(run.is_empty());
        for block in blocks {
            if self.buf.len() + block.len() > cap && !self.buf.is_empty() {
                let full = std::mem::replace(&mut self.buf, self.pool.checkout());
                run.push(full.freeze());
            }
            if block.len() >= cap {
                run.push(block.clone());
            } else {
                self.buf.extend_from_slice(block);
            }
        }
        let r = if run.is_empty() {
            Ok(())
        } else {
            self.inner.write_blocks(&run)
        };
        run.clear();
        self.run = run;
        r
    }
}

impl<W: BlockWrite> Drop for BlockWriter<W> {
    fn drop(&mut self) {
        // Like BufWriter: best-effort flush of buffered data.
        let _ = self.flush_buf();
    }
}

/// Buffered reader over a [`BlockRead`] source, mirroring
/// `std::io::BufReader` semantics: small reads are served from buffered
/// chunks, reads at least as large as the buffer capacity bypass it. The
/// buffer holds refcounted chunks instead of a flat array, so chunked
/// consumers get them back out copy-free via `read_chunks`.
pub struct BlockReader<R: BlockRead> {
    inner: R,
    chunks: VecDeque<Bytes>,
    /// Total bytes buffered in `chunks`.
    avail: usize,
    cap: usize,
}

impl<R: BlockRead> BlockReader<R> {
    pub fn new(inner: R, cap: usize) -> BlockReader<R> {
        BlockReader {
            inner,
            chunks: VecDeque::new(),
            avail: 0,
            cap,
        }
    }

    fn fill(&mut self) -> io::Result<usize> {
        debug_assert!(self.chunks.is_empty());
        let mut fresh = Vec::new();
        let n = self.inner.read_chunks(self.cap, &mut fresh)?;
        self.chunks.extend(fresh);
        self.avail = n;
        Ok(n)
    }
}

impl<R: BlockRead> Read for BlockReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.avail == 0 && buf.len() >= self.cap {
            // BufReader bypass: large reads skip the buffer entirely.
            return self.inner.read(buf);
        }
        if self.avail == 0 && self.fill()? == 0 {
            return Ok(0);
        }
        let front = self.chunks.front_mut().expect("avail > 0");
        let n = buf.len().min(front.len());
        buf[..n].copy_from_slice(&front[..n]);
        if n == front.len() {
            self.chunks.pop_front();
        } else {
            front.split_to(n);
        }
        self.avail -= n;
        Ok(n)
    }
}

impl<R: BlockRead> BlockRead for BlockReader<R> {
    fn read_chunks(&mut self, max: usize, out: &mut Vec<Bytes>) -> io::Result<usize> {
        if self.avail == 0 {
            // Nothing buffered: pull straight from the source, zero-copy.
            return self.inner.read_chunks(max, out);
        }
        let mut taken = 0;
        while taken < max && self.avail > 0 {
            let front = self.chunks.front_mut().expect("avail > 0");
            let remaining = max - taken;
            if front.len() <= remaining {
                taken += front.len();
                self.avail -= front.len();
                out.push(self.chunks.pop_front().expect("non-empty"));
            } else {
                out.push(front.split_to(remaining));
                self.avail -= remaining;
                taken += remaining;
            }
        }
        Ok(taken)
    }

    fn read_chunks_min(
        &mut self,
        min: usize,
        max: usize,
        out: &mut Vec<Bytes>,
    ) -> io::Result<usize> {
        // Serve what is buffered, then state the remaining demand to the
        // source in one call (not a per-chunk loop) so a demand-aware
        // source can satisfy it with a single parked wait.
        let mut got = 0;
        if self.avail > 0 {
            got = self.read_chunks(max.max(min), out)?;
            if got >= min {
                return Ok(got);
            }
        }
        let n = self.inner.read_chunks_min(min - got, max, out)?;
        Ok(got + n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuModel, CpuRates};
    use gridsim_net::{ctx, NodeId, Sim};

    fn host_cpu() -> (Sim, HostCpu) {
        let sim = Sim::new(1);
        let cpu = HostCpu::new(CpuModel::new(), NodeId(0), CpuRates::default());
        (sim, cpu)
    }

    #[test]
    fn write_charges_simulated_time() {
        let (sim, cpu) = host_cpu();
        sim.spawn("w", move || {
            let mut w = CpuWrite::new(Vec::new(), cpu, 10e6);
            w.write_all(&[0u8; 1_000_000]).unwrap();
            assert_eq!(
                ctx::now().as_nanos(),
                100_000_000,
                "1 MB at 10 MB/s = 100 ms"
            );
            assert_eq!(w.get_ref().len(), 1_000_000);
        });
        sim.run();
    }

    #[test]
    fn read_charges_simulated_time() {
        let (sim, cpu) = host_cpu();
        sim.spawn("r", move || {
            let data = vec![7u8; 500_000];
            let mut r = CpuRead::new(io::Cursor::new(data), cpu, 5e6);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out.len(), 500_000);
            assert_eq!(
                ctx::now().as_nanos(),
                100_000_000,
                "0.5 MB at 5 MB/s = 100 ms"
            );
        });
        sim.run();
    }
}
