//! CPU-charging I/O adapters.
//!
//! Drivers that burn host CPU (compression, encryption, block copies) wrap
//! their inner stream in these adapters: every byte moved is charged to the
//! host's [`HostCpu`] at the configured 2004-era rate, so filter costs show
//! up in simulated time exactly where the paper's evaluation saw them.

use std::io::{self, Read, Write};

use crate::cpu::HostCpu;

/// Granularity of CPU charging: cost is charged per chunk, interleaved
/// with the writes, modelling a filter that processes data incrementally
/// (as zlib does) rather than stalling for a whole message up front.
const CPU_CHUNK: usize = 8 * 1024;

/// A writer charging CPU time per byte written before passing it on.
pub struct CpuWrite<W> {
    inner: W,
    cpu: HostCpu,
    rate: f64,
}

impl<W: Write> CpuWrite<W> {
    pub fn new(inner: W, cpu: HostCpu, rate: f64) -> CpuWrite<W> {
        CpuWrite { inner, cpu, rate }
    }

    pub fn into_inner(self) -> W {
        self.inner
    }

    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for CpuWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for chunk in buf.chunks(CPU_CHUNK) {
            self.cpu.consume(chunk.len(), self.rate);
            self.inner.write_all(chunk)?;
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader charging CPU time per byte read from the inner stream.
pub struct CpuRead<R> {
    inner: R,
    cpu: HostCpu,
    rate: f64,
}

impl<R: Read> CpuRead<R> {
    pub fn new(inner: R, cpu: HostCpu, rate: f64) -> CpuRead<R> {
        CpuRead { inner, cpu, rate }
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for CpuRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.cpu.consume(n, self.rate);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuModel, CpuRates};
    use gridsim_net::{ctx, NodeId, Sim};

    fn host_cpu() -> (Sim, HostCpu) {
        let sim = Sim::new(1);
        let cpu = HostCpu::new(CpuModel::new(), NodeId(0), CpuRates::default());
        (sim, cpu)
    }

    #[test]
    fn write_charges_simulated_time() {
        let (sim, cpu) = host_cpu();
        sim.spawn("w", move || {
            let mut w = CpuWrite::new(Vec::new(), cpu, 10e6);
            w.write_all(&[0u8; 1_000_000]).unwrap();
            assert_eq!(ctx::now().as_nanos(), 100_000_000, "1 MB at 10 MB/s = 100 ms");
            assert_eq!(w.get_ref().len(), 1_000_000);
        });
        sim.run();
    }

    #[test]
    fn read_charges_simulated_time() {
        let (sim, cpu) = host_cpu();
        sim.spawn("r", move || {
            let data = vec![7u8; 500_000];
            let mut r = CpuRead::new(io::Cursor::new(data), cpu, 5e6);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out.len(), 500_000);
            assert_eq!(ctx::now().as_nanos(), 100_000_000, "0.5 MB at 5 MB/s = 100 ms");
        });
        sim.run();
    }
}
