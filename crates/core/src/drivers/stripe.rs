//! Parallel TCP streams (paper §4.2): "sender and receiver have to fragment
//! and multiplex the data over the underlying, individual TCP streams".
//!
//! The fragmentation scheme is strict round-robin: block *i* travels on
//! stream `i mod N`, framed as `[varint length][bytes]`. Because the order
//! is deterministic, the receiver needs no reordering buffer — TCP's own
//! per-stream windows do the buffering, and the aggregate in-flight data is
//! the sum of the individual windows, which is precisely how parallel
//! streams beat the OS window cap.

use gridzip::varint;
use std::io::{self, Read, Write};

use crate::cpu::HostCpu;

/// The sender half of the parallel-stream driver. Each stream gets a pump
/// task and a bounded block queue, so one stream's congestion-recovery
/// stall does not idle the others (NetIbis likewise wrote each connection
/// from its own thread); the producer parks only when the *target* queue
/// of the round-robin order is full.
pub struct StripeWriter {
    queues: Vec<gridsim_net::SimQueue<Vec<u8>>>,
    error: std::sync::Arc<parking_lot::Mutex<Option<(io::ErrorKind, String)>>>,
    block: usize,
    buf: Vec<u8>,
    next: usize,
    cpu: HostCpu,
    copy_rate: f64,
    /// Total blocks emitted (diagnostics).
    pub blocks_sent: u64,
}

/// Blocks buffered per stream before the producer backpressures.
const WRITER_QUEUE_BLOCKS: usize = 8;

impl StripeWriter {
    pub fn new(
        streams: Vec<Box<dyn Write + Send>>,
        block: usize,
        cpu: HostCpu,
        copy_rate: f64,
    ) -> StripeWriter {
        Self::with_sched(streams, block, cpu, copy_rate, &gridsim_net::ctx::handle())
    }

    pub fn with_sched(
        streams: Vec<Box<dyn Write + Send>>,
        block: usize,
        cpu: HostCpu,
        copy_rate: f64,
        sched: &gridsim_net::SchedHandle,
    ) -> StripeWriter {
        assert!(streams.len() >= 2, "striping needs at least two streams");
        assert!(block > 0);
        let error: std::sync::Arc<parking_lot::Mutex<Option<(io::ErrorKind, String)>>> =
            std::sync::Arc::new(parking_lot::Mutex::new(None));
        let mut queues = Vec::with_capacity(streams.len());
        for (i, mut stream) in streams.into_iter().enumerate() {
            let q: gridsim_net::SimQueue<Vec<u8>> =
                gridsim_net::SimQueue::bounded(WRITER_QUEUE_BLOCKS);
            let q2 = q.clone();
            let error = std::sync::Arc::clone(&error);
            sched.spawn_daemon(format!("stripe-out-{i}"), move || {
                while let Some(block) = q2.pop() {
                    let mut hdr = Vec::with_capacity(4);
                    varint::put(&mut hdr, block.len() as u64);
                    if let Err(e) = stream.write_all(&hdr).and_then(|_| stream.write_all(&block))
                    {
                        *error.lock() = Some((e.kind(), e.to_string()));
                        q2.close();
                        break;
                    }
                }
                let _ = stream.flush();
            });
            queues.push(q);
        }
        StripeWriter {
            queues,
            error,
            block,
            buf: Vec::with_capacity(block),
            next: 0,
            cpu,
            copy_rate,
            blocks_sent: 0,
        }
    }

    fn emit_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if let Some((kind, msg)) = self.error.lock().clone() {
            return Err(io::Error::new(kind, msg));
        }
        // The user-space copy into the per-stream socket is the striping
        // overhead the paper's comp+parallel combination pays for.
        self.cpu.consume(self.buf.len(), self.copy_rate);
        let block = std::mem::replace(&mut self.buf, Vec::with_capacity(self.block));
        if self.queues[self.next].push(block).is_err() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "stripe stream closed"));
        }
        self.next = (self.next + 1) % self.queues.len();
        self.blocks_sent += 1;
        Ok(())
    }
}

impl Drop for StripeWriter {
    fn drop(&mut self) {
        let _ = self.emit_block();
        for q in &self.queues {
            q.close();
        }
    }
}

impl Write for StripeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.block - self.buf.len();
            let n = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..n]);
            rest = &rest[n..];
            if self.buf.len() == self.block {
                self.emit_block()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit_block()
    }
}

/// The receiver half: per-stream pump tasks drain the TCP streams eagerly
/// into bounded block queues (keeping every stream's receive window open —
/// NetIbis used one thread per connection the same way), while `read`
/// consumes blocks in the writer's round-robin order.
pub struct StripeReader {
    queues: Vec<gridsim_net::SimQueue<io::Result<Vec<u8>>>>,
    next: usize,
    current: Vec<u8>,
    pos: usize,
    eof: bool,
}

/// Blocks buffered per stream before the pump backpressures TCP.
const READER_QUEUE_BLOCKS: usize = 8;

impl StripeReader {
    pub fn new(streams: Vec<Box<dyn Read + Send>>, sched: &gridsim_net::SchedHandle) -> StripeReader {
        assert!(streams.len() >= 2, "striping needs at least two streams");
        let mut queues = Vec::with_capacity(streams.len());
        for (i, mut s) in streams.into_iter().enumerate() {
            let q: gridsim_net::SimQueue<io::Result<Vec<u8>>> =
                gridsim_net::SimQueue::bounded(READER_QUEUE_BLOCKS);
            let q2 = q.clone();
            sched.spawn_daemon(format!("stripe-pump-{i}"), move || loop {
                match read_block(&mut s) {
                    Ok(Some(block)) => {
                        if q2.push(Ok(block)).is_err() {
                            break; // consumer gone
                        }
                    }
                    Ok(None) => {
                        q2.close();
                        break;
                    }
                    Err(e) => {
                        let _ = q2.push(Err(e));
                        q2.close();
                        break;
                    }
                }
            });
            queues.push(q);
        }
        StripeReader { queues, next: 0, current: Vec::new(), pos: 0, eof: false }
    }
}

/// Read one `[varint len][bytes]` block; `Ok(None)` on clean EOF at a block
/// boundary.
fn read_block<R: Read>(s: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut b = [0u8];
        let n = s.read(&mut b)?;
        if n == 0 {
            if first {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated stripe header"));
        }
        len |= u64::from(b[0] & 0x7f) << shift;
        shift += 7;
        first = false;
        if b[0] & 0x80 == 0 {
            break;
        }
        if shift > 63 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "stripe header overflow"));
        }
    }
    if len > (64 << 20) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "stripe block too large"));
    }
    let mut block = vec![0u8; len as usize];
    s.read_exact(&mut block)?;
    Ok(Some(block))
}

impl Read for StripeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.eof {
            return Ok(0);
        }
        while self.pos == self.current.len() {
            match self.queues[self.next].pop() {
                Some(Ok(block)) => {
                    self.current = block;
                    self.pos = 0;
                    self.next = (self.next + 1) % self.queues.len();
                }
                Some(Err(e)) => return Err(e),
                None => {
                    self.eof = true;
                    return Ok(0);
                }
            }
        }
        let n = buf.len().min(self.current.len() - self.pos);
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuModel, CpuRates};
    use gridsim_net::{NodeId, Sim};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// In-memory unidirectional stream for driver tests (no network).
    #[derive(Clone, Default)]
    struct MemPipe(Arc<Mutex<(Vec<u8>, usize)>>);

    impl Write for MemPipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Read for MemPipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let mut g = self.0.lock();
            let (data, pos) = (&g.0, g.1);
            let n = buf.len().min(data.len() - pos);
            buf[..n].copy_from_slice(&data[pos..pos + n]);
            g.1 += n;
            Ok(n)
        }
    }

    fn free_cpu() -> HostCpu {
        HostCpu::new(CpuModel::new(), NodeId(0), CpuRates::unlimited())
    }

    fn stripe_roundtrip(n_streams: usize, block: usize, payload: &[u8]) -> Vec<u8> {
        let pipes: Vec<MemPipe> = (0..n_streams).map(|_| MemPipe::default()).collect();
        let writers: Vec<Box<dyn Write + Send>> =
            pipes.iter().cloned().map(|p| Box::new(p) as Box<dyn Write + Send>).collect();
        let readers: Vec<Box<dyn Read + Send>> =
            pipes.iter().cloned().map(|p| Box::new(p) as Box<dyn Read + Send>).collect();
        let sim = Sim::new(0);
        let cpu = free_cpu();
        let payload = payload.to_vec();
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        sim.spawn("roundtrip", move || {
            let mut w = StripeWriter::new(writers, block, cpu, f64::INFINITY);
            w.write_all(&payload).unwrap();
            w.flush().unwrap();
            drop(w); // close queues so the pumps drain and hang up
            gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
            let mut r = StripeReader::new(readers, &gridsim_net::ctx::handle());
            let mut got = Vec::new();
            // MemPipe returns Ok(0) when drained, which StripeReader treats
            // as stream EOF — fine for this lock-step test.
            r.read_to_end(&mut got).unwrap();
            *o2.lock() = got;
        });
        sim.run();
        let x = out.lock().clone();
        x
    }

    #[test]
    fn roundtrip_various_shapes() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for n in [2usize, 4, 8] {
            for block in [1024usize, 4096, 16 * 1024] {
                assert_eq!(stripe_roundtrip(n, block, &payload), payload, "n={n} block={block}");
            }
        }
    }

    #[test]
    fn partial_tail_block_preserved() {
        // Payload not a multiple of the block size.
        let payload = vec![9u8; 10_000 + 7];
        assert_eq!(stripe_roundtrip(3, 4096, &payload), payload);
    }

    #[test]
    fn empty_payload_is_clean_eof() {
        assert_eq!(stripe_roundtrip(2, 1024, &[]), Vec::<u8>::new());
    }

    #[test]
    fn blocks_distribute_round_robin() {
        let pipes: Vec<MemPipe> = (0..4).map(|_| MemPipe::default()).collect();
        let writers: Vec<Box<dyn Write + Send>> =
            pipes.iter().cloned().map(|p| Box::new(p) as Box<dyn Write + Send>).collect();
        let sim = Sim::new(0);
        let cpu = free_cpu();
        let pipes2 = pipes.clone();
        sim.spawn("w", move || {
            let mut w = StripeWriter::new(writers, 1000, cpu, f64::INFINITY);
            w.write_all(&vec![1u8; 8000]).unwrap();
            w.flush().unwrap();
            assert_eq!(w.blocks_sent, 8);
            drop(w);
            gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
            // Each of 4 pipes got exactly 2 blocks (2 * (1000 + hdr)).
            for p in &pipes2 {
                let len = p.0.lock().0.len();
                assert_eq!(len, 2 * (1000 + 2), "1000-byte blocks have 2-byte varint headers");
            }
        });
        sim.run();
    }

    #[test]
    fn copy_cost_is_charged() {
        let pipes: Vec<MemPipe> = (0..2).map(|_| MemPipe::default()).collect();
        let writers: Vec<Box<dyn Write + Send>> =
            pipes.iter().cloned().map(|p| Box::new(p) as Box<dyn Write + Send>).collect();
        let sim = Sim::new(0);
        let cpu = free_cpu();
        sim.spawn("w", move || {
            let mut w = StripeWriter::new(writers, 1024, cpu, 10e6);
            w.write_all(&vec![0u8; 1_000_000]).unwrap();
            w.flush().unwrap();
            let t = gridsim_net::ctx::now().as_secs_f64();
            assert!((0.099..0.101).contains(&t), "1 MB at 10 MB/s copy = 100 ms, got {t}");
        });
        sim.run();
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let pipes: Vec<MemPipe> = (0..2).map(|_| MemPipe::default()).collect();
        let writers: Vec<Box<dyn Write + Send>> =
            pipes.iter().cloned().map(|p| Box::new(p) as Box<dyn Write + Send>).collect();
        let sim = Sim::new(0);
        let cpu = free_cpu();
        let pipes2 = pipes.clone();
        sim.spawn("t", move || {
            let mut w = StripeWriter::new(writers, 1000, cpu, f64::INFINITY);
            w.write_all(&vec![1u8; 3000]).unwrap();
            w.flush().unwrap();
            drop(w);
            gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
            // Corrupt: truncate the second stream mid-block.
            pipes2[1].0.lock().0.truncate(500);
            let readers: Vec<Box<dyn Read + Send>> =
                pipes2.iter().cloned().map(|p| Box::new(p) as Box<dyn Read + Send>).collect();
            let mut r = StripeReader::new(readers, &gridsim_net::ctx::handle());
            let mut got = Vec::new();
            assert!(r.read_to_end(&mut got).is_err());
        });
        sim.run();
    }
}
