//! Parallel TCP streams (paper §4.2): "sender and receiver have to fragment
//! and multiplex the data over the underlying, individual TCP streams".
//!
//! The fragmentation scheme is strict round-robin: block *i* travels on
//! stream `i mod N`, framed as `[varint length][bytes]`. Because the order
//! is deterministic, the receiver needs no reordering buffer — TCP's own
//! per-stream windows do the buffering, and the aggregate in-flight data is
//! the sum of the individual windows, which is precisely how parallel
//! streams beat the OS window cap.
//!
//! Blocks travel as refcounted [`Bytes`]: a block-aligned `write_block`
//! slices the incoming buffer straight onto the stream queues without
//! copying (the per-block copy *cost* is still charged to the simulated
//! CPU — the paper's hardware paid it, so simulated time must too), and
//! the receive side hands decoded blocks out as refcounted views.

use bytes::Bytes;
use gridzip::varint;
use std::io::{self, Read, Write};

use super::blockio::{BlockRead, BlockWrite};
use crate::cpu::HostCpu;
use crate::pool::{BlockBuf, BlockPool};

/// The sender half of the parallel-stream driver. Each stream gets a pump
/// task and a bounded block queue, so one stream's congestion-recovery
/// stall does not idle the others (NetIbis likewise wrote each connection
/// from its own thread); the producer parks only when the *target* queue
/// of the round-robin order is full.
pub struct StripeWriter {
    queues: Vec<gridsim_net::SimQueue<Bytes>>,
    error: std::sync::Arc<parking_lot::Mutex<Option<(io::ErrorKind, String)>>>,
    block: usize,
    pool: BlockPool,
    buf: BlockBuf,
    next: usize,
    cpu: HostCpu,
    copy_rate: f64,
    /// Total blocks emitted (diagnostics).
    pub blocks_sent: u64,
}

/// Blocks buffered per stream before the producer backpressures.
const WRITER_QUEUE_BLOCKS: usize = 8;

impl StripeWriter {
    pub fn new(
        streams: Vec<Box<dyn BlockWrite + Send>>,
        block: usize,
        cpu: HostCpu,
        copy_rate: f64,
    ) -> StripeWriter {
        Self::with_sched(streams, block, cpu, copy_rate, &gridsim_net::ctx::handle())
    }

    pub fn with_sched(
        streams: Vec<Box<dyn BlockWrite + Send>>,
        block: usize,
        cpu: HostCpu,
        copy_rate: f64,
        sched: &gridsim_net::SchedHandle,
    ) -> StripeWriter {
        Self::with_pool(streams, BlockPool::new(block), cpu, copy_rate, sched)
    }

    /// Like [`with_sched`](Self::with_sched), drawing staging buffers from
    /// a caller-supplied pool (shared across the stack's layers); the
    /// striping unit is the pool's block size.
    pub fn with_pool(
        streams: Vec<Box<dyn BlockWrite + Send>>,
        pool: BlockPool,
        cpu: HostCpu,
        copy_rate: f64,
        sched: &gridsim_net::SchedHandle,
    ) -> StripeWriter {
        let block = pool.block_size();
        assert!(streams.len() >= 2, "striping needs at least two streams");
        assert!(block > 0);
        let error: std::sync::Arc<parking_lot::Mutex<Option<(io::ErrorKind, String)>>> =
            std::sync::Arc::new(parking_lot::Mutex::new(None));
        let mut queues = Vec::with_capacity(streams.len());
        for (i, mut stream) in streams.into_iter().enumerate() {
            let q: gridsim_net::SimQueue<Bytes> =
                gridsim_net::SimQueue::bounded(WRITER_QUEUE_BLOCKS);
            let q2 = q.clone();
            let error = std::sync::Arc::clone(&error);
            sched.spawn_daemon(format!("stripe-out-{i}"), move || {
                while let Some(block) = q2.pop() {
                    let mut hdr = Vec::with_capacity(4);
                    varint::put(&mut hdr, block.len() as u64);
                    if let Err(e) = stream
                        .write_all(&hdr)
                        .and_then(|_| stream.write_block(block))
                    {
                        *error.lock() = Some((e.kind(), e.to_string()));
                        q2.close();
                        break;
                    }
                }
                let _ = stream.flush();
            });
            queues.push(q);
        }
        let buf = pool.checkout();
        StripeWriter {
            queues,
            error,
            block,
            pool,
            buf,
            next: 0,
            cpu,
            copy_rate,
            blocks_sent: 0,
        }
    }

    /// A handle for terminating the reader pumps on the far side: clones
    /// of the per-stream queues, usable while the writer itself is borrowed
    /// elsewhere (the session layer holds it inside the boxed stack).
    pub fn terminator(&self) -> StripeTerminator {
        StripeTerminator {
            queues: self.queues.clone(),
        }
    }

    /// Hand one assembled block to the round-robin target stream. The block
    /// may be a zero-copy slice of a caller buffer; the user-space copy the
    /// real striping driver pays is still charged to the simulated CPU
    /// (the paper's comp+parallel combination pays exactly this cost), so
    /// simulated time is independent of the host-side optimization.
    fn emit_ready(&mut self, block: Bytes) -> io::Result<()> {
        if let Some((kind, msg)) = self.error.lock().clone() {
            return Err(io::Error::new(kind, msg));
        }
        self.cpu.consume(block.len(), self.copy_rate);
        if self.queues[self.next].push(block).is_err() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "stripe stream closed",
            ));
        }
        self.next = (self.next + 1) % self.queues.len();
        self.blocks_sent += 1;
        Ok(())
    }

    fn emit_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.buf, self.pool.checkout());
        self.emit_ready(full.freeze())
    }
}

impl Drop for StripeWriter {
    fn drop(&mut self) {
        let _ = self.emit_block();
        for q in &self.queues {
            q.close();
        }
    }
}

impl Write for StripeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.block - self.buf.len();
            let n = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..n]);
            rest = &rest[n..];
            if self.buf.len() == self.block {
                self.emit_block()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit_block()
    }
}

impl BlockWrite for StripeWriter {
    fn write_block(&mut self, mut block: Bytes) -> io::Result<()> {
        while !block.is_empty() {
            if self.buf.is_empty() && block.len() >= self.block {
                // Block-aligned fast path: carve a striping unit off the
                // incoming buffer as a refcounted view, no copy.
                let unit = block.split_to(self.block);
                self.emit_ready(unit)?;
            } else {
                let room = self.block - self.buf.len();
                let n = room.min(block.len());
                self.buf.extend_from_slice(&block.split_to(n));
                if self.buf.len() == self.block {
                    self.emit_block()?;
                }
            }
        }
        Ok(())
    }
}

/// Sender-side handle that ends the current striping *segment*: one
/// zero-length block — the in-band terminator — is queued on every stream,
/// strictly after every data block already submitted (queue FIFO order).
/// The receiver's per-stream pumps exit cleanly when they read it, which
/// is what makes a live path reconfiguration safe: the old [`StripeReader`]
/// can be quiesced before a replacement stack starts reading the same
/// sockets. Writers never emit zero-length data blocks, so the terminator
/// is unambiguous on the wire.
pub struct StripeTerminator {
    queues: Vec<gridsim_net::SimQueue<Bytes>>,
}

impl StripeTerminator {
    /// Queue the terminator on every stream. Fails if a stream pump
    /// already died (its queue is closed).
    pub fn terminate(&self) -> io::Result<()> {
        for q in &self.queues {
            if q.push(Bytes::new()).is_err() {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "stripe stream closed",
                ));
            }
        }
        Ok(())
    }
}

/// The receiver half: per-stream pump tasks drain the TCP streams eagerly
/// into bounded block queues (keeping every stream's receive window open —
/// NetIbis used one thread per connection the same way), while `read`
/// consumes blocks in the writer's round-robin order.
pub struct StripeReader {
    queues: Vec<gridsim_net::SimQueue<io::Result<Bytes>>>,
    next: usize,
    current: Bytes,
    eof: bool,
}

/// Blocks buffered per stream before the pump backpressures TCP.
const READER_QUEUE_BLOCKS: usize = 8;

impl StripeReader {
    pub fn new(
        streams: Vec<Box<dyn BlockRead + Send>>,
        sched: &gridsim_net::SchedHandle,
    ) -> StripeReader {
        assert!(streams.len() >= 2, "striping needs at least two streams");
        let mut queues = Vec::with_capacity(streams.len());
        for (i, mut s) in streams.into_iter().enumerate() {
            let q: gridsim_net::SimQueue<io::Result<Bytes>> =
                gridsim_net::SimQueue::bounded(READER_QUEUE_BLOCKS);
            let q2 = q.clone();
            sched.spawn_daemon(format!("stripe-pump-{i}"), move || loop {
                match read_block(&mut s) {
                    Ok(Some(block)) => {
                        if q2.push(Ok(block)).is_err() {
                            break; // consumer gone
                        }
                    }
                    Ok(None) => {
                        q2.close();
                        break;
                    }
                    Err(e) => {
                        let _ = q2.push(Err(e));
                        q2.close();
                        break;
                    }
                }
            });
            queues.push(q);
        }
        StripeReader {
            queues,
            next: 0,
            current: Bytes::new(),
            eof: false,
        }
    }

    /// A handle for waiting out the pump tasks after this reader is
    /// retired: clones of the per-stream queues, so the session layer can
    /// confirm every pump exited before a replacement stack reads the same
    /// sockets.
    pub fn quiesce(&self) -> StripeQuiesce {
        StripeQuiesce {
            queues: self.queues.clone(),
        }
    }

    /// Pop blocks in round-robin order until `current` is non-empty;
    /// `Ok(false)` on EOF.
    fn refill(&mut self) -> io::Result<bool> {
        while self.current.is_empty() {
            match self.queues[self.next].pop() {
                Some(Ok(block)) => {
                    self.current = block;
                    self.next = (self.next + 1) % self.queues.len();
                }
                Some(Err(e)) => return Err(e),
                None => {
                    self.eof = true;
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

/// Receiver-side handle paired with a retired [`StripeReader`]: waiting on
/// it parks until every pump task consumed its segment terminator (or hit
/// a stream error) and closed its queue. Until that point the pumps are
/// still entitled to read from the underlying sockets, so a live
/// reconfiguration must wait here before acking the sender — otherwise a
/// zombie pump would steal the first new-format bytes.
pub struct StripeQuiesce {
    queues: Vec<gridsim_net::SimQueue<io::Result<Bytes>>>,
}

impl StripeQuiesce {
    /// Park until every pump exited, discarding any residual blocks or
    /// errors (by the reconfiguration protocol there are none: the
    /// terminator is the last thing the sender wrote in the old format).
    pub fn wait(self) {
        for q in &self.queues {
            while q.pop().is_some() {}
        }
    }
}

/// Read one `[varint len][bytes]` block; `Ok(None)` on clean EOF at a block
/// boundary or on the in-band segment terminator (a zero-length block —
/// see [`StripeTerminator`]; data blocks are never empty). The one copy of
/// the stripe receive path lives here (the block must be contiguous to
/// frame); consumers downstream share it by refcount.
fn read_block<R: Read>(s: &mut R) -> io::Result<Option<Bytes>> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut b = [0u8];
        let n = s.read(&mut b)?;
        if n == 0 {
            if first {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated stripe header",
            ));
        }
        len |= u64::from(b[0] & 0x7f) << shift;
        shift += 7;
        first = false;
        if b[0] & 0x80 == 0 {
            break;
        }
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stripe header overflow",
            ));
        }
    }
    if len == 0 {
        // Segment terminator: the sender retired this stripe layout (live
        // reconfiguration). Clean end-of-segment, same as EOF.
        return Ok(None);
    }
    if len > (64 << 20) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "stripe block too large",
        ));
    }
    let mut block = vec![0u8; len as usize];
    s.read_exact(&mut block)?;
    Ok(Some(Bytes::from(block)))
}

impl Read for StripeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.eof || !self.refill()? {
            return Ok(0);
        }
        let n = buf.len().min(self.current.len());
        buf[..n].copy_from_slice(&self.current[..n]);
        self.current.split_to(n);
        Ok(n)
    }
}

impl BlockRead for StripeReader {
    fn read_chunks(&mut self, max: usize, out: &mut Vec<Bytes>) -> io::Result<usize> {
        if self.eof || !self.refill()? {
            return Ok(0);
        }
        let n = max.min(self.current.len());
        out.push(self.current.split_to(n));
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuModel, CpuRates};
    use gridsim_net::{NodeId, Sim};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// In-memory unidirectional stream for driver tests (no network).
    #[derive(Clone, Default)]
    struct MemPipe(Arc<Mutex<(Vec<u8>, usize)>>);

    impl Write for MemPipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Read for MemPipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let mut g = self.0.lock();
            let (data, pos) = (&g.0, g.1);
            let n = buf.len().min(data.len() - pos);
            buf[..n].copy_from_slice(&data[pos..pos + n]);
            g.1 += n;
            Ok(n)
        }
    }

    // Copying defaults are fine for an in-memory pipe.
    impl BlockWrite for MemPipe {}
    impl BlockRead for MemPipe {}

    fn free_cpu() -> HostCpu {
        HostCpu::new(CpuModel::new(), NodeId(0), CpuRates::unlimited())
    }

    fn block_writers(pipes: &[MemPipe]) -> Vec<Box<dyn BlockWrite + Send>> {
        pipes
            .iter()
            .cloned()
            .map(|p| Box::new(p) as Box<dyn BlockWrite + Send>)
            .collect()
    }

    fn block_readers(pipes: &[MemPipe]) -> Vec<Box<dyn BlockRead + Send>> {
        pipes
            .iter()
            .cloned()
            .map(|p| Box::new(p) as Box<dyn BlockRead + Send>)
            .collect()
    }

    fn stripe_roundtrip(n_streams: usize, block: usize, payload: &[u8]) -> Vec<u8> {
        let pipes: Vec<MemPipe> = (0..n_streams).map(|_| MemPipe::default()).collect();
        let writers = block_writers(&pipes);
        let readers = block_readers(&pipes);
        let sim = Sim::new(0);
        let cpu = free_cpu();
        let payload = payload.to_vec();
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        sim.spawn("roundtrip", move || {
            let mut w = StripeWriter::new(writers, block, cpu, f64::INFINITY);
            w.write_all(&payload).unwrap();
            w.flush().unwrap();
            drop(w); // close queues so the pumps drain and hang up
            gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
            let mut r = StripeReader::new(readers, &gridsim_net::ctx::handle());
            let mut got = Vec::new();
            // MemPipe returns Ok(0) when drained, which StripeReader treats
            // as stream EOF — fine for this lock-step test.
            r.read_to_end(&mut got).unwrap();
            *o2.lock() = got;
        });
        sim.run();
        let x = out.lock().clone();
        x
    }

    #[test]
    fn roundtrip_various_shapes() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for n in [2usize, 4, 8] {
            for block in [1024usize, 4096, 16 * 1024] {
                assert_eq!(
                    stripe_roundtrip(n, block, &payload),
                    payload,
                    "n={n} block={block}"
                );
            }
        }
    }

    #[test]
    fn partial_tail_block_preserved() {
        // Payload not a multiple of the block size.
        let payload = vec![9u8; 10_000 + 7];
        assert_eq!(stripe_roundtrip(3, 4096, &payload), payload);
    }

    #[test]
    fn empty_payload_is_clean_eof() {
        assert_eq!(stripe_roundtrip(2, 1024, &[]), Vec::<u8>::new());
    }

    #[test]
    fn blocks_distribute_round_robin() {
        let pipes: Vec<MemPipe> = (0..4).map(|_| MemPipe::default()).collect();
        let writers = block_writers(&pipes);
        let sim = Sim::new(0);
        let cpu = free_cpu();
        let pipes2 = pipes.clone();
        sim.spawn("w", move || {
            let mut w = StripeWriter::new(writers, 1000, cpu, f64::INFINITY);
            w.write_all(&vec![1u8; 8000]).unwrap();
            w.flush().unwrap();
            assert_eq!(w.blocks_sent, 8);
            drop(w);
            gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
            // Each of 4 pipes got exactly 2 blocks (2 * (1000 + hdr)).
            for p in &pipes2 {
                let len = p.0.lock().0.len();
                assert_eq!(
                    len,
                    2 * (1000 + 2),
                    "1000-byte blocks have 2-byte varint headers"
                );
            }
        });
        sim.run();
    }

    #[test]
    fn write_block_zero_copy_path_matches_write() {
        // The same payload through `write` (copying) and `write_block`
        // (slicing) must produce byte-identical per-stream wire data.
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        let wire_of = |use_block: bool| -> Vec<Vec<u8>> {
            let pipes: Vec<MemPipe> = (0..3).map(|_| MemPipe::default()).collect();
            let writers = block_writers(&pipes);
            let sim = Sim::new(0);
            let cpu = free_cpu();
            let payload = payload.clone();
            let pipes2 = pipes.clone();
            let out = Arc::new(Mutex::new(Vec::new()));
            let o2 = Arc::clone(&out);
            sim.spawn("w", move || {
                let mut w = StripeWriter::new(writers, 1024, cpu, f64::INFINITY);
                if use_block {
                    w.write_block(Bytes::from(payload)).unwrap();
                } else {
                    w.write_all(&payload).unwrap();
                }
                w.flush().unwrap();
                drop(w);
                gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
                *o2.lock() = pipes2.iter().map(|p| p.0.lock().0.clone()).collect();
            });
            sim.run();
            let x = out.lock().clone();
            x
        };
        assert_eq!(wire_of(true), wire_of(false));
    }

    #[test]
    fn copy_cost_is_charged() {
        let pipes: Vec<MemPipe> = (0..2).map(|_| MemPipe::default()).collect();
        let writers = block_writers(&pipes);
        let sim = Sim::new(0);
        let cpu = free_cpu();
        sim.spawn("w", move || {
            let mut w = StripeWriter::new(writers, 1024, cpu, 10e6);
            w.write_all(&vec![0u8; 1_000_000]).unwrap();
            w.flush().unwrap();
            let t = gridsim_net::ctx::now().as_secs_f64();
            assert!(
                (0.099..0.101).contains(&t),
                "1 MB at 10 MB/s copy = 100 ms, got {t}"
            );
        });
        sim.run();
    }

    #[test]
    fn copy_cost_charged_on_zero_copy_blocks_too() {
        // Simulated time models the real driver's copy; the host-side
        // zero-copy fast path must not change it.
        let pipes: Vec<MemPipe> = (0..2).map(|_| MemPipe::default()).collect();
        let writers = block_writers(&pipes);
        let sim = Sim::new(0);
        let cpu = free_cpu();
        sim.spawn("w", move || {
            let mut w = StripeWriter::new(writers, 1024, cpu, 10e6);
            w.write_block(Bytes::from(vec![0u8; 1_000_000])).unwrap();
            w.flush().unwrap();
            let t = gridsim_net::ctx::now().as_secs_f64();
            assert!(
                (0.099..0.101).contains(&t),
                "zero-copy path still charges copy: {t}"
            );
        });
        sim.run();
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let pipes: Vec<MemPipe> = (0..2).map(|_| MemPipe::default()).collect();
        let writers = block_writers(&pipes);
        let sim = Sim::new(0);
        let cpu = free_cpu();
        let pipes2 = pipes.clone();
        sim.spawn("t", move || {
            let mut w = StripeWriter::new(writers, 1000, cpu, f64::INFINITY);
            w.write_all(&vec![1u8; 3000]).unwrap();
            w.flush().unwrap();
            drop(w);
            gridsim_net::ctx::sleep(std::time::Duration::from_millis(1));
            // Corrupt: truncate the second stream mid-block.
            pipes2[1].0.lock().0.truncate(500);
            let readers = block_readers(&pipes2);
            let mut r = StripeReader::new(readers, &gridsim_net::ctx::handle());
            let mut got = Vec::new();
            assert!(r.read_to_end(&mut got).is_err());
        });
        sim.run();
    }
}
