//! Adaptive compression (paper §8 future work: "the dynamic enabling or
//! disabling of compression will then become possible", referencing the
//! AdOC library of §1).
//!
//! Policy, in the spirit of AdOC: per window of blocks, compare the time
//! spent *waiting on the wire* (downstream `write` blocking — the signal
//! that the network is the bottleneck) against the *CPU time* spent
//! compressing. Wire-bound → compression pays; CPU-bound → send stored
//! blocks. While stored, a periodic probe block keeps the compressibility
//! estimate fresh so the driver can switch back. The on-wire format is the
//! standard gridzip frame (each block carries its own stored/compressed
//! flag), so the receiver is the ordinary decompressing reader.

use gridzip::Compressor;
use std::io::{self, Write};
use std::time::Duration;

use crate::cpu::HostCpu;

/// Blocks per decision window.
const WINDOW_BLOCKS: u32 = 8;
/// While in stored mode, probe-compress one block out of this many.
const PROBE_EVERY: u32 = 32;
/// Hysteresis on the estimated per-block times before switching modes.
const HYSTERESIS: f64 = 1.2;

/// Counters exposed for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveStats {
    pub compressed_blocks: u64,
    pub stored_blocks: u64,
    pub mode_switches: u64,
}

/// A compression filter that turns itself on and off based on where the
/// bottleneck is.
pub struct AdaptiveCompressWriter<W: Write> {
    inner: W,
    comp: Compressor,
    cpu: HostCpu,
    rate: f64,
    block: usize,
    buf: Vec<u8>,
    /// Reused per-block buffers (framed output, LZSS scratch).
    framed: Vec<u8>,
    scratch: Vec<u8>,
    compressing: bool,
    // Per-window accounting (simulated time).
    wire_wait: Duration,
    wire_bytes: u64,
    blocks_in_window: u32,
    blocks_since_probe: u32,
    /// EWMA of the achieved compression ratio (orig / framed).
    ratio_est: f64,
    pub stats: AdaptiveStats,
}

impl<W: Write> AdaptiveCompressWriter<W> {
    pub fn new(inner: W, level: u8, block: usize, cpu: HostCpu, rate: f64) -> Self {
        AdaptiveCompressWriter {
            inner,
            comp: Compressor::new(level),
            cpu,
            rate,
            block,
            buf: Vec::with_capacity(block),
            framed: Vec::new(),
            scratch: Vec::new(),
            compressing: true, // optimistic start, like AdOC
            wire_wait: Duration::ZERO,
            wire_bytes: 0,
            blocks_in_window: 0,
            blocks_since_probe: 0,
            ratio_est: 2.0,
            stats: AdaptiveStats::default(),
        }
    }

    /// Currently compressing?
    pub fn is_compressing(&self) -> bool {
        self.compressing
    }

    fn emit_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let probe = !self.compressing && self.blocks_since_probe >= PROBE_EVERY;
        let do_compress = self.compressing || probe;
        self.framed.clear();
        if do_compress {
            let orig = self.buf.len();
            self.cpu.consume(orig, self.rate);
            gridzip::frame_block_with(
                &mut self.comp,
                &self.buf,
                &mut self.framed,
                &mut self.scratch,
            );
            let ratio = orig as f64 / self.framed.len() as f64;
            self.ratio_est = 0.75 * self.ratio_est + 0.25 * ratio;
            self.stats.compressed_blocks += 1;
            self.blocks_since_probe = 0;
        } else {
            // Stored block: flag 0, orig_len, payload_len, payload.
            self.framed.push(0);
            gridzip::varint::put(&mut self.framed, self.buf.len() as u64);
            gridzip::varint::put(&mut self.framed, self.buf.len() as u64);
            self.framed.extend_from_slice(&self.buf);
            self.stats.stored_blocks += 1;
            self.blocks_since_probe += 1;
        }
        self.buf.clear();
        let t0 = gridsim_net::ctx::now();
        self.inner.write_all(&self.framed)?;
        self.wire_wait += gridsim_net::ctx::now().since(t0);
        self.wire_bytes += self.framed.len() as u64;
        self.blocks_in_window += 1;
        if self.blocks_in_window >= WINDOW_BLOCKS {
            self.decide();
        }
        Ok(())
    }

    /// Estimate per-block costs of both modes from this window's observed
    /// wire drain rate, the known CPU rate and the running ratio estimate;
    /// pick the cheaper mode (with hysteresis).
    fn decide(&mut self) {
        let wire_secs = self.wire_wait.as_secs_f64();
        let block = self.block as f64;
        // Observed wire drain rate over this window. A negligible wait
        // means the wire is effectively free: storing wins outright.
        let next = if wire_secs < 1e-6 {
            false
        } else {
            let wire_rate = self.wire_bytes as f64 / wire_secs;
            let t_store = block / wire_rate;
            let t_comp = (block / self.rate).max(block / self.ratio_est / wire_rate);
            if self.compressing {
                // Keep compressing unless storing is clearly cheaper.
                t_comp <= t_store * HYSTERESIS
            } else {
                // Switch on only when compression is clearly cheaper.
                t_comp * HYSTERESIS <= t_store
            }
        };
        if next != self.compressing {
            self.compressing = next;
            self.stats.mode_switches += 1;
        }
        self.wire_wait = Duration::ZERO;
        self.wire_bytes = 0;
        self.blocks_in_window = 0;
    }
}

impl<W: Write> Write for AdaptiveCompressWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.block - self.buf.len();
            let n = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..n]);
            rest = &rest[n..];
            if self.buf.len() == self.block {
                self.emit_block()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit_block()?;
        self.inner.flush()
    }
}

// Recodes every byte (compressed or stored frames), so block handoff uses
// the copying default and flows through the same framing path.
impl<W: Write> super::blockio::BlockWrite for AdaptiveCompressWriter<W> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuModel, CpuRates};
    use gridsim_net::{ctx, NodeId, Sim};
    use std::io::Read;

    /// A writer that models a wire draining at a fixed rate by sleeping in
    /// simulated time.
    struct ThrottledSink {
        rate: f64,
        data: Vec<u8>,
    }

    impl Write for ThrottledSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            ctx::sleep(Duration::from_secs_f64(buf.len() as f64 / self.rate));
            self.data.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run_adaptive(wire_rate: f64, payload: &[u8]) -> (AdaptiveStats, bool, Vec<u8>) {
        let sim = Sim::new(5);
        let cpu = HostCpu::new(CpuModel::new(), NodeId(0), CpuRates::default());
        let payload = payload.to_vec();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let o2 = out.clone();
        sim.spawn("writer", move || {
            let sink = ThrottledSink {
                rate: wire_rate,
                data: Vec::new(),
            };
            let mut w =
                AdaptiveCompressWriter::new(sink, 1, 32 * 1024, cpu.clone(), cpu.rates.compress_l1);
            w.write_all(&payload).unwrap();
            w.flush().unwrap();
            let mode = w.is_compressing();
            let stats = w.stats;
            *o2.lock() = Some((stats, mode, w.inner.data));
        });
        sim.run();
        let x = out.lock().take().unwrap();
        x
    }

    #[test]
    fn slow_wire_keeps_compression_on() {
        // 1 MB/s wire, 5.5 MB/s compression CPU: wire-bound.
        let payload = gridzip::synth::grid_payload(2 << 20, 0.6, 1);
        let (stats, mode, _) = run_adaptive(1e6, &payload);
        assert!(mode, "should still be compressing on a slow wire");
        assert!(
            stats.compressed_blocks > stats.stored_blocks,
            "mostly compressed: {stats:?}"
        );
    }

    #[test]
    fn fast_wire_disables_compression() {
        // 40 MB/s wire: CPU-bound; should switch to stored mode.
        let payload = gridzip::synth::grid_payload(2 << 20, 0.6, 1);
        let (stats, mode, _) = run_adaptive(40e6, &payload);
        assert!(!mode, "should have turned compression off on a fast wire");
        assert!(
            stats.stored_blocks > stats.compressed_blocks,
            "mostly stored: {stats:?}"
        );
        assert!(stats.mode_switches >= 1);
    }

    #[test]
    fn output_is_always_decodable() {
        // Whatever mode decisions were made, the receiver must reconstruct
        // the exact payload.
        for rate in [1e6, 8e6, 40e6] {
            let payload = gridzip::synth::grid_payload(1 << 20, 0.5, 9);
            let (_, _, framed) = run_adaptive(rate, &payload);
            let mut r = gridzip::DecompressReader::new(std::io::Cursor::new(framed));
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, payload, "rate {rate}");
        }
    }
}
