//! Driver stacks: the paper's link utilization methods (§4), composed
//! exactly as NetIbis composes filtering drivers over networking drivers
//! (Fig. 6).
//!
//! Layering, top (application) to bottom (wire), mirroring the paper's
//! "compression over secured parallel streams":
//!
//! ```text
//! message framing (ports)           — SendPort/ReceivePort, port.rs
//!   └ compression filter            — gridzip blocks + CPU cost   (§4.3)
//!       └ parallel-stream driver    — round-robin block striping  (§4.2)
//!       │     └ GTLS per stream     — encryption filter           (§4.4)
//!       │           └ TCP_Block     — user-space aggregation +
//!       │                             TCP_NODELAY                 (§4.1)
//!       └ (streams = 1: plain TCP_Block, optionally under GTLS)
//! ```
//!
//! Establishment and utilization stay orthogonal: the stack builders accept
//! any [`RawLink`] — native TCP from any establishment method, or a routed
//! relay stream.

pub mod adaptive;
pub mod blockio;
pub mod stripe;

use bytes::Bytes;
use gridcrypt::{SecureConfig, SecureStream};
use gridsim_net::SockAddr;
use gridsim_tcp::TcpStream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, Read, Write};

use crate::cpu::HostCpu;
use crate::pool::BlockPool;
use crate::relay::RoutedStream;
use crate::wire::{FrameReader, FrameWriter};

pub use adaptive::{AdaptiveCompressWriter, AdaptiveStats};
pub use blockio::{
    copy_read_chunks, BlockRead, BlockReader, BlockWrite, BlockWriter, CpuRead, CpuWrite,
};
pub use stripe::{StripeQuiesce, StripeReader, StripeTerminator, StripeWriter};

/// A raw, established link: either a native TCP socket (client/server,
/// spliced, or proxied — Table 1's "native TCP" rows) or a relay-routed
/// stream.
#[derive(Clone)]
pub enum RawLink {
    Tcp(TcpStream),
    Routed(RoutedStream),
}

impl RawLink {
    /// Human-readable description of the peer.
    pub fn peer_desc(&self) -> String {
        match self {
            RawLink::Tcp(s) => format!("tcp:{}", s.peer_addr()),
            RawLink::Routed(s) => format!("routed:node-{}", s.peer()),
        }
    }

    /// The remote address, for native TCP links.
    pub fn peer_addr(&self) -> Option<SockAddr> {
        match self {
            RawLink::Tcp(s) => Some(s.peer_addr()),
            RawLink::Routed(_) => None,
        }
    }

    /// Signal end-of-stream to the peer.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            RawLink::Tcp(s) => s.shutdown_write(),
            RawLink::Routed(s) => s.shutdown_write(),
        }
    }

    /// Has the transport detected a failure on this link? Costs nothing on
    /// the wire — it reads error state the transport already recorded (RTO
    /// abort, reset, closed relay stream). The session layer probes every
    /// link of a shared stack with this before committing a write.
    pub fn is_healthy(&self) -> bool {
        match self {
            RawLink::Tcp(s) => s.health().is_none(),
            RawLink::Routed(s) => !s.is_closed(),
        }
    }

    /// Block until bytes queued on this link have left the host, then
    /// report whether the link survived the drain. Graceful close runs
    /// this so buffered writes cannot silently die with the socket.
    pub fn drain(&self) -> io::Result<()> {
        match self {
            RawLink::Tcp(s) => s.drain(),
            RawLink::Routed(s) => s.drain(),
        }
    }

    /// Did the peer close its sending side cleanly (EOF rather than abort)?
    /// The receive pump uses this to decide whether a channel ended or
    /// merely flapped.
    pub fn closed_cleanly(&self) -> bool {
        match self {
            RawLink::Tcp(s) => s.health().is_none(),
            RawLink::Routed(s) => s.fin_received(),
        }
    }

    /// Transport counters for the path controller's telemetry sample.
    /// Relay-routed links have no TCP state of their own; they report
    /// `None` and the sample falls back to session-level counters.
    pub fn conn_stats(&self) -> Option<gridsim_tcp::ConnStats> {
        match self {
            RawLink::Tcp(s) => s.stats().ok(),
            RawLink::Routed(_) => None,
        }
    }

    /// Unacknowledged bytes sitting in the transport's send buffer.
    pub fn tx_backlog(&self) -> usize {
        match self {
            RawLink::Tcp(s) => s.tx_backlog().unwrap_or(0),
            RawLink::Routed(_) => 0,
        }
    }
}

impl Read for RawLink {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            RawLink::Tcp(s) => s.read_some(buf),
            RawLink::Routed(s) => s.read(buf),
        }
    }
}

impl Write for RawLink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            RawLink::Tcp(s) => s.write_some(buf),
            RawLink::Routed(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// Native TCP is the zero-copy floor of the stack: blocks are handed to the
// simulated TCP send queue as refcounted slices and read back out as views
// of received segments. Routed links copy (the relay recodes frames).
impl BlockWrite for RawLink {
    fn write_block(&mut self, block: Bytes) -> io::Result<()> {
        match self {
            RawLink::Tcp(s) => s.write_block(block),
            RawLink::Routed(s) => s.write_all(&block),
        }
    }
    fn write_blocks(&mut self, blocks: &[Bytes]) -> io::Result<()> {
        match self {
            // One vectored submit: the whole run enters the simulated send
            // queue under a single parked wait.
            RawLink::Tcp(s) => s.write_all_blocks(blocks),
            RawLink::Routed(s) => {
                for b in blocks {
                    s.write_all(b)?;
                }
                Ok(())
            }
        }
    }
}

impl BlockRead for RawLink {
    fn read_chunks(&mut self, max: usize, out: &mut Vec<Bytes>) -> io::Result<usize> {
        match self {
            RawLink::Tcp(s) => s.read_chunks(max, out),
            RawLink::Routed(s) => copy_read_chunks(s, max, out),
        }
    }
    fn read_chunks_min(
        &mut self,
        min: usize,
        max: usize,
        out: &mut Vec<Bytes>,
    ) -> io::Result<usize> {
        match self {
            // Demand-aware drain: the socket parks once and is serviced at
            // event time until `min` bytes (or EOF) accumulated.
            RawLink::Tcp(s) => s.read_chunks_min(min, max, out),
            RawLink::Routed(s) => {
                let mut got = 0;
                while got < min {
                    let n = copy_read_chunks(s, (min - got).max(max), out)?;
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                Ok(got)
            }
        }
    }
}

/// The runtime-tunable half of a [`StackSpec`]: the knobs a live
/// `RECONFIG` exchange may change mid-connection. Everything else on the
/// spec (security, adaptive mode) is fixed at establishment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathParams {
    /// Number of parallel TCP streams (1 = plain).
    pub stripes: u16,
    /// Aggregation block size for TCP_Block and the striping unit.
    pub block_size: u32,
    /// Compression filter with this gridzip level (`None` = no compressor).
    pub compression_level: Option<u8>,
}

impl Default for PathParams {
    fn default() -> Self {
        PathParams {
            stripes: 1,
            block_size: 32 * 1024,
            compression_level: None,
        }
    }
}

impl PathParams {
    /// Are these parameters usable for a stack over `avail` raw links?
    pub fn valid_for(&self, avail: usize) -> bool {
        self.stripes >= 1 && (self.stripes as usize) <= avail && self.block_size > 0
    }

    /// Short description, e.g. `"4x64KiB+z1"`.
    pub fn describe(&self) -> String {
        let mut s = format!("{}x{}B", self.stripes, self.block_size);
        if let Some(l) = self.compression_level {
            s.push_str(&format!("+z{l}"));
        }
        s
    }
}

/// Configuration of a driver stack — what NetIbis reads from its
/// configuration file / runtime properties. The receive port declares it;
/// senders learn it from the name service, so both endpoints always
/// assemble matching stacks (the paper's "driver assembly consistency").
///
/// The tunable knobs (stripe count, block size, compression level) live in
/// the embedded [`PathParams`]; `adaptive`/`secure` are establishment-time
/// properties a live reconfiguration never changes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackSpec {
    /// Tunable path parameters (stripes, block size, compression level).
    pub path: PathParams,
    /// Adaptive compression (paper §8 future work): toggle the compressor
    /// on and off at runtime depending on where the bottleneck is.
    pub adaptive: bool,
    /// GTLS encryption filter on every stream.
    pub secure: bool,
}

impl StackSpec {
    pub fn plain() -> StackSpec {
        StackSpec::default()
    }

    /// Number of parallel TCP streams (1 = plain).
    pub fn streams(&self) -> u16 {
        self.path.stripes
    }

    /// Aggregation block size for TCP_Block and the striping unit.
    pub fn block_size(&self) -> u32 {
        self.path.block_size
    }

    /// Compression filter level, if any.
    pub fn compress(&self) -> Option<u8> {
        self.path.compression_level
    }

    pub fn with_streams(mut self, n: u16) -> Self {
        assert!(n >= 1, "at least one stream");
        self.path.stripes = n;
        self
    }

    pub fn with_compression(mut self, level: u8) -> Self {
        self.path.compression_level = Some(level.clamp(1, 9));
        self
    }

    /// Compression that turns itself off when CPU-bound (AdOC-style).
    pub fn with_adaptive_compression(mut self, level: u8) -> Self {
        self.path.compression_level = Some(level.clamp(1, 9));
        self.adaptive = true;
        self
    }

    pub fn with_security(mut self) -> Self {
        self.secure = true;
        self
    }

    pub fn with_block_size(mut self, bytes: u32) -> Self {
        assert!(bytes > 0);
        self.path.block_size = bytes;
        self
    }

    /// The spec that results from applying live `params` to this
    /// establishment spec: tunables swap, `adaptive`/`secure` persist.
    pub fn with_path(&self, params: PathParams) -> StackSpec {
        StackSpec {
            path: params,
            ..self.clone()
        }
    }

    /// Short description, e.g. `"4 streams + zlib(1) + gtls"`.
    pub fn describe(&self) -> String {
        let mut parts = vec![if self.streams() == 1 {
            "plain TCP".to_string()
        } else {
            format!("{} streams", self.streams())
        }];
        if let Some(l) = self.compress() {
            if self.adaptive {
                parts.push(format!("adaptive compression(level {l})"));
            } else {
                parts.push(format!("compression(level {l})"));
            }
        }
        if self.secure {
            parts.push("gtls".to_string());
        }
        parts.join(" + ")
    }

    pub fn encode(&self) -> Vec<u8> {
        FrameWriter::new()
            .u64(self.streams() as u64)
            .u64(self.block_size() as u64)
            .u8(self.compress().map(|l| l + 1).unwrap_or(0))
            .u8(self.secure as u8)
            .u8(self.adaptive as u8)
            .into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> io::Result<StackSpec> {
        let mut r = FrameReader::new(bytes);
        let streams = r.u64()? as u16;
        let block_size = r.u64()? as u32;
        let compress = match r.u8()? {
            0 => None,
            l => Some(l - 1),
        };
        let secure = r.u8()? != 0;
        let adaptive = r.u8()? != 0;
        if streams == 0 || block_size == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad stack spec"));
        }
        Ok(StackSpec {
            path: PathParams {
                stripes: streams,
                block_size,
                compression_level: compress,
            },
            adaptive,
            secure,
        })
    }
}

/// Security material for GTLS stacks.
#[derive(Clone)]
pub struct SecurityContext {
    pub config: SecureConfig,
    /// Deterministic seed for handshake randomness (a simulation stand-in
    /// for OS entropy).
    pub seed: u64,
}

/// One assembled, per-stream wire: TCP/routed, possibly under GTLS.
enum WireStream {
    Plain(RawLink),
    Secure(Box<SecureStream<RawLink>>),
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Plain(s) => s.read(buf),
            WireStream::Secure(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Plain(s) => s.write(buf),
            WireStream::Secure(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Plain(s) => s.flush(),
            WireStream::Secure(s) => s.flush(),
        }
    }
}

// Plain wires pass blocks straight through; GTLS recodes every byte, so it
// keeps the copying defaults (records are built from the plaintext anyway).
impl BlockWrite for WireStream {
    fn write_block(&mut self, block: Bytes) -> io::Result<()> {
        match self {
            WireStream::Plain(s) => s.write_block(block),
            WireStream::Secure(s) => s.write_all(&block),
        }
    }
    fn write_blocks(&mut self, blocks: &[Bytes]) -> io::Result<()> {
        match self {
            WireStream::Plain(s) => s.write_blocks(blocks),
            WireStream::Secure(s) => {
                for b in blocks {
                    s.write_all(b)?;
                }
                Ok(())
            }
        }
    }
}

impl BlockRead for WireStream {
    fn read_chunks(&mut self, max: usize, out: &mut Vec<Bytes>) -> io::Result<usize> {
        match self {
            WireStream::Plain(s) => s.read_chunks(max, out),
            WireStream::Secure(s) => copy_read_chunks(s, max, out),
        }
    }
    fn read_chunks_min(
        &mut self,
        min: usize,
        max: usize,
        out: &mut Vec<Bytes>,
    ) -> io::Result<usize> {
        match self {
            WireStream::Plain(s) => s.read_chunks_min(min, max, out),
            WireStream::Secure(s) => {
                let mut got = 0;
                while got < min {
                    let n = copy_read_chunks(s, (min - got).max(max), out)?;
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                Ok(got)
            }
        }
    }
}

/// The assembled sender side of a connection. The `BlockWrite` vtable lets
/// whole pooled blocks travel the stack without per-layer copies; plain
/// `Write` remains available for small control writes.
pub type SenderStack = Box<dyn BlockWrite + Send>;
/// The assembled receiver side of a connection.
pub type ReceiverStack = Box<dyn BlockRead + Send>;

/// One stream's GTLS handshake. Stream index `i` salts the handshake RNG
/// so parallel handshakes stay deterministic per stream regardless of
/// completion order.
fn secure_handshake(
    link: RawLink,
    i: usize,
    config: &SecureConfig,
    seed: u64,
    cpu: &HostCpu,
    is_initiator: bool,
) -> io::Result<WireStream> {
    // Handshake cost: two X25519 ops + hashes, ≈ a few ms of 2004
    // CPU; charged as 64 KiB of crypto work.
    cpu.consume(64 * 1024, cpu.rates.crypt);
    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32 | is_initiator as u64);
    let s = if is_initiator {
        SecureStream::client(link, config, &mut rng)?
    } else {
        SecureStream::server(link, config, &mut rng)?
    };
    Ok(WireStream::Secure(Box::new(s)))
}

fn secure_wires(
    links: Vec<RawLink>,
    spec: &StackSpec,
    cpu: &HostCpu,
    sec: Option<&SecurityContext>,
    is_initiator: bool,
) -> io::Result<Vec<WireStream>> {
    if !spec.secure {
        return Ok(links.into_iter().map(WireStream::Plain).collect());
    }
    let sc = sec.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "stack requires a security context",
        )
    })?;
    if links.len() <= 1 {
        return links
            .into_iter()
            .enumerate()
            .map(|(i, link)| secure_handshake(link, i, &sc.config, sc.seed, cpu, is_initiator))
            .collect();
    }
    // Multi-stream: pipeline the handshakes instead of serializing them.
    // Each stream's handshake is an independent RTT + crypto exchange on
    // its own socket, so they overlap; link setup pays ~one handshake of
    // latency instead of `streams` of them. Collected in stream order, so
    // the assembled stack is identical to the sequential build.
    let sched = gridsim_net::ctx::handle();
    let handles: Vec<_> = links
        .into_iter()
        .enumerate()
        .map(|(i, link)| {
            let config = sc.config.clone();
            let seed = sc.seed;
            let cpu = cpu.clone();
            sched.spawn(format!("gtls-hs-{i}"), move || {
                secure_handshake(link, i, &config, seed, &cpu, is_initiator)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join()).collect()
}

/// Assemble the sender stack over established raw links.
/// `links.len()` must equal `spec.streams()`.
///
/// Also returns the [`BlockPool`] the stack's aggregation/striping layers
/// draw their staging buffers from, so callers can surface pool hit/miss
/// counters alongside link stats.
pub fn build_sender(
    links: Vec<RawLink>,
    spec: &StackSpec,
    cpu: HostCpu,
    sec: Option<&SecurityContext>,
) -> io::Result<(SenderStack, BlockPool)> {
    build_sender_parts(links, spec, cpu, sec).map(|(s, p, _)| (s, p))
}

/// [`build_sender`] variant that also hands back the striped layer's
/// segment-terminator handle (None for single-stream stacks). The session
/// layer uses it during a live reconfiguration to end the stripe segment
/// in-band, so the receiver's pump tasks exit before the stack swap.
pub fn build_sender_parts(
    links: Vec<RawLink>,
    spec: &StackSpec,
    cpu: HostCpu,
    sec: Option<&SecurityContext>,
) -> io::Result<(SenderStack, BlockPool, Option<stripe::StripeTerminator>)> {
    assert_eq!(
        links.len(),
        spec.streams() as usize,
        "link count must match spec.streams()"
    );
    let block = spec.block_size() as usize;
    let pool = BlockPool::new(block);
    let mut wires = secure_wires(links, spec, &cpu, sec, true)?;
    // Per-stream crypto cost wrapper.
    let crypt_rate = cpu.rates.crypt;
    let mut term = None;
    let base: Box<dyn BlockWrite + Send> = if wires.len() == 1 {
        let w = wires.pop().unwrap();
        let w: Box<dyn BlockWrite + Send> = if spec.secure {
            Box::new(CpuWrite::new(w, cpu.clone(), crypt_rate))
        } else {
            Box::new(w)
        };
        // TCP_Block: user-space aggregation with explicit flush (§4.1).
        Box::new(BlockWriter::new(w, pool.clone()))
    } else {
        let wires: Vec<Box<dyn BlockWrite + Send>> = wires
            .into_iter()
            .map(|w| -> Box<dyn BlockWrite + Send> {
                if spec.secure {
                    Box::new(CpuWrite::new(w, cpu.clone(), crypt_rate))
                } else {
                    Box::new(w)
                }
            })
            .collect();
        let sw = StripeWriter::with_pool(
            wires,
            pool.clone(),
            cpu.clone(),
            cpu.rates.copy,
            &gridsim_net::ctx::handle(),
        );
        term = Some(sw.terminator());
        Box::new(sw)
    };
    let stack: SenderStack = match spec.compress() {
        Some(level) if spec.adaptive => {
            let rate = cpu.rates.compress_at_level(level);
            Box::new(AdaptiveCompressWriter::new(base, level, block, cpu, rate))
        }
        Some(level) => {
            let rate = cpu.rates.compress_at_level(level);
            let cw = gridzip::CompressWriter::with_block_size(base, level, block);
            Box::new(CpuWrite::new(cw, cpu, rate))
        }
        None => base,
    };
    Ok((stack, pool, term))
}

/// Assemble the receiver stack over accepted raw links (same order as the
/// sender's streams).
pub fn build_receiver(
    links: Vec<RawLink>,
    spec: &StackSpec,
    cpu: HostCpu,
    sec: Option<&SecurityContext>,
    sched: &gridsim_net::SchedHandle,
) -> io::Result<ReceiverStack> {
    build_receiver_parts(links, spec, cpu, sec, sched).map(|(s, _)| s)
}

/// [`build_receiver`] variant that also hands back the striped layer's
/// quiesce handle (None for single-stream stacks). The pump holds it so a
/// live reconfiguration can wait for the retired stack's reader tasks to
/// exit before a replacement stack reads the same sockets.
pub fn build_receiver_parts(
    links: Vec<RawLink>,
    spec: &StackSpec,
    cpu: HostCpu,
    sec: Option<&SecurityContext>,
    sched: &gridsim_net::SchedHandle,
) -> io::Result<(ReceiverStack, Option<stripe::StripeQuiesce>)> {
    assert_eq!(
        links.len(),
        spec.streams() as usize,
        "link count must match spec.streams()"
    );
    let block = spec.block_size() as usize;
    let mut wires = secure_wires(links, spec, &cpu, sec, false)?;
    let crypt_rate = cpu.rates.crypt;
    let mut quiesce = None;
    let base: Box<dyn BlockRead + Send> = if wires.len() == 1 {
        let w = wires.pop().unwrap();
        let w: Box<dyn BlockRead + Send> = if spec.secure {
            Box::new(CpuRead::new(w, cpu.clone(), crypt_rate))
        } else {
            Box::new(w)
        };
        Box::new(BlockReader::new(w, block))
    } else {
        let wires: Vec<Box<dyn BlockRead + Send>> = wires
            .into_iter()
            .map(|w| -> Box<dyn BlockRead + Send> {
                if spec.secure {
                    Box::new(CpuRead::new(w, cpu.clone(), crypt_rate))
                } else {
                    Box::new(w)
                }
            })
            .collect();
        let sr = StripeReader::new(wires, sched);
        quiesce = Some(sr.quiesce());
        Box::new(sr)
    };
    let stack: ReceiverStack = match spec.compress() {
        Some(_) => {
            let rate = cpu.rates.decompress;
            let cr = CpuRead::new(ReadAdapter(base), cpu, rate);
            Box::new(gridzip::DecompressReader::new(cr))
        }
        None => base,
    };
    Ok((stack, quiesce))
}

/// Newtype so the boxed stack itself implements `Read` by value.
struct ReadAdapter(Box<dyn BlockRead + Send>);

impl Read for ReadAdapter {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_encode_decode_roundtrip() {
        let specs = [
            StackSpec::plain(),
            StackSpec::plain().with_streams(8),
            StackSpec::plain().with_compression(1),
            StackSpec::plain()
                .with_streams(4)
                .with_compression(9)
                .with_security(),
            StackSpec::plain().with_block_size(4096),
        ];
        for s in specs {
            assert_eq!(StackSpec::decode(&s.encode()).unwrap(), s);
        }
    }

    #[test]
    fn spec_describe_is_informative() {
        let s = StackSpec::plain()
            .with_streams(4)
            .with_compression(1)
            .with_security();
        let d = s.describe();
        assert!(
            d.contains("4 streams") && d.contains("level 1") && d.contains("gtls"),
            "{d}"
        );
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(StackSpec::decode(&[]).is_err());
        let zero_streams = FrameWriter::new().u64(0).u64(1024).u8(0).u8(0).into_bytes();
        assert!(StackSpec::decode(&zero_streams).is_err());
    }
}
