//! Wire encoding helpers for the netgrid control protocols (name service,
//! relay, service messages): length-prefixed frames of varint-encoded
//! fields. All control protocols are versioned by a magic byte per frame
//! kind rather than per connection, keeping parsing stateless.

use gridsim_net::{Ip, SockAddr};
use gridzip::varint;
use std::io::{self, Read, Write};

/// Maximum accepted control frame, to bound allocations from bad peers.
pub const MAX_FRAME: usize = 1 << 20;

/// Multiplexed data-path framing (the session layer, DESIGN.md §8).
///
/// A data link starts in the legacy single-channel format — each message is
/// `[varint len][payload]`, exactly what pre-session-layer senders wrote —
/// and stays there as long as one channel uses it, so single-channel wire
/// traces are byte-identical to the old format. The moment a second channel
/// attaches, the sender emits [`mux::SENTINEL`] as a message length: legacy
/// senders can never produce it (it exceeds any accepted message size), so
/// it unambiguously escapes the stream into tagged framing. After the
/// sentinel every frame starts with a varint tag:
///
/// ```text
/// MSG   [tag=0][varint channel][varint len][payload]
/// OPEN  [tag=1][varint channel][varint name_len][port name]
/// CLOSE [tag=2][varint channel]
/// ```
pub(crate) mod mux {
    /// Escapes the legacy `[len][payload]` stream into tagged framing.
    /// Larger than any legal message length, so it cannot collide.
    pub const SENTINEL: u64 = u64::MAX;
    /// One message on a channel.
    pub const MSG: u64 = 0;
    /// A new channel joins the link, bound to a named receive port.
    pub const OPEN: u64 = 1;
    /// A channel closed cleanly; the link itself stays up.
    pub const CLOSE: u64 = 2;
    /// A batch of channels joins the link in one control frame:
    /// `[n][(channel, name)]*` — the RESUME preamble's extras encoding.
    /// Semantically N OPENs; the receiver handles each idempotently.
    pub const OPEN_BATCH: u64 = 3;
    /// Live path reconfiguration (DESIGN.md §11):
    /// `[tag=4][varint epoch][varint stripes][varint block_size][varint level+1]`.
    /// The sender flushes its current stack to a block boundary, writes
    /// this frame, and BLOCKS until the receiver's ack. The receiver
    /// tears its stack down at the frame boundary, replies raw on stream
    /// 0 (reverse direction) with `[epoch][n][(channel, delivered)]*` —
    /// its delivered watermarks, the exactly-once handshake — and both
    /// ends rebuild their driver stacks from the new parameters.
    pub const RECONFIG: u64 = 4;
}

/// An encoder for one frame.
#[derive(Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    pub fn new() -> FrameWriter {
        FrameWriter {
            buf: Vec::with_capacity(64),
        }
    }

    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    pub fn u64(mut self, v: u64) -> Self {
        varint::put(&mut self.buf, v);
        self
    }

    pub fn bytes(mut self, v: &[u8]) -> Self {
        varint::put(&mut self.buf, v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    pub fn str(self, v: &str) -> Self {
        self.bytes(v.as_bytes())
    }

    pub fn addr(mut self, a: SockAddr) -> Self {
        varint::put(&mut self.buf, a.ip.0 as u64);
        varint::put(&mut self.buf, a.port as u64);
        self
    }

    pub fn opt_addr(self, a: Option<SockAddr>) -> Self {
        match a {
            Some(a) => self.u8(1).addr(a),
            None => self.u8(0),
        }
    }

    /// Write a counted list of socket addresses.
    pub fn addrs(mut self, list: &[SockAddr]) -> Self {
        varint::put(&mut self.buf, list.len() as u64);
        for a in list {
            self = self.addr(*a);
        }
        self
    }

    /// Write the frame (`[varint len][payload]`) to `w` and flush.
    pub fn send<W: Write>(self, w: &mut W) -> io::Result<()> {
        let mut hdr = [0u8; 10];
        let n = varint::put_slice(&mut hdr, self.buf.len() as u64);
        w.write_all(&hdr[..n])?;
        w.write_all(&self.buf)?;
        w.flush()
    }

    /// The raw payload (for embedding in other frames).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Read one length-prefixed frame.
/// Write one length-prefixed frame from an already-encoded payload (a
/// [`FrameWriter::into_bytes`] result queued for later delivery).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut hdr = [0u8; 10];
    let n = varint::put_slice(&mut hdr, payload.len() as u64);
    w.write_all(&hdr[..n])?;
    w.write_all(payload)?;
    w.flush()
}

pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let len = varint::read_from(r)? as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "control frame too large",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Cursor-style decoder over a frame payload.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl<'a> FrameReader<'a> {
    pub fn new(buf: &'a [u8]) -> FrameReader<'a> {
        FrameReader { buf, pos: 0 }
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        let v = *self.buf.get(self.pos).ok_or_else(|| bad("truncated u8"))?;
        self.pos += 1;
        Ok(v)
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        let (v, n) = varint::get(&self.buf[self.pos..]).ok_or_else(|| bad("truncated varint"))?;
        self.pos += n;
        Ok(v)
    }

    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u64()?;
        // Checked: a corrupt varint near u64::MAX must not overflow `pos`.
        let len = usize::try_from(len).map_err(|_| bad("length overflow"))?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated bytes"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Borrow the string field without copying; `str()` is the owned form.
    pub fn str_ref(&mut self) -> io::Result<&'a str> {
        let b = self.bytes()?;
        std::str::from_utf8(b).map_err(|_| bad("invalid utf-8"))
    }

    pub fn str(&mut self) -> io::Result<String> {
        // Validate on the borrow; only valid strings pay for the copy.
        self.str_ref().map(str::to_owned)
    }

    pub fn addr(&mut self) -> io::Result<SockAddr> {
        let ip = self.u64()? as u32;
        let port = self.u64()?;
        if port > u16::MAX as u64 {
            return Err(bad("port out of range"));
        }
        Ok(SockAddr::new(Ip(ip), port as u16))
    }

    pub fn opt_addr(&mut self) -> io::Result<Option<SockAddr>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.addr()?)),
            _ => Err(bad("bad option tag")),
        }
    }

    /// Read a counted list of socket addresses.
    pub fn addrs(&mut self) -> io::Result<Vec<SockAddr>> {
        let n = self.u64()?;
        // Each addr is at least 2 bytes on the wire; a count beyond the
        // remaining payload is corrupt, not just large.
        if n as usize > self.buf.len().saturating_sub(self.pos) {
            return Err(bad("addr list count out of range"));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.addr()?);
        }
        Ok(out)
    }

    /// Remaining undecoded payload.
    pub fn rest(&mut self) -> &'a [u8] {
        let r = &self.buf[self.pos..];
        self.pos = self.buf.len();
        r
    }

    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let addr = SockAddr::new(Ip::new(131, 1, 0, 10), 7777);
        let mut wire = Vec::new();
        FrameWriter::new()
            .u8(7)
            .u64(123456789)
            .str("hello-port")
            .addr(addr)
            .opt_addr(None)
            .opt_addr(Some(addr))
            .bytes(b"\x00\x01\x02")
            .send(&mut wire)
            .unwrap();
        let mut cur = io::Cursor::new(wire);
        let frame = read_frame(&mut cur).unwrap();
        let mut r = FrameReader::new(&frame);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 123456789);
        assert_eq!(r.str().unwrap(), "hello-port");
        assert_eq!(r.addr().unwrap(), addr);
        assert_eq!(r.opt_addr().unwrap(), None);
        assert_eq!(r.opt_addr().unwrap(), Some(addr));
        assert_eq!(r.bytes().unwrap(), b"\x00\x01\x02");
        assert!(r.is_empty());
    }

    #[test]
    fn addr_list_roundtrip() {
        let list = vec![
            SockAddr::new(Ip::new(131, 1, 0, 10), 600),
            SockAddr::new(Ip::new(131, 2, 0, 10), 601),
        ];
        let mut wire = Vec::new();
        FrameWriter::new()
            .addrs(&list)
            .addrs(&[])
            .send(&mut wire)
            .unwrap();
        let frame = read_frame(&mut io::Cursor::new(wire)).unwrap();
        let mut r = FrameReader::new(&frame);
        assert_eq!(r.addrs().unwrap(), list);
        assert_eq!(r.addrs().unwrap(), Vec::new());
        assert!(r.is_empty());
    }

    #[test]
    fn addr_list_bad_count_rejected() {
        let frame = FrameWriter::new().u64(1 << 40).into_bytes();
        assert!(FrameReader::new(&frame).addrs().is_err());
    }

    #[test]
    fn truncated_fields_error_cleanly() {
        let mut wire = Vec::new();
        FrameWriter::new().str("abcdef").send(&mut wire).unwrap();
        let frame = read_frame(&mut io::Cursor::new(wire)).unwrap();
        let mut r = FrameReader::new(&frame[..3]);
        assert!(r.str().is_err());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        varint::put(&mut wire, (MAX_FRAME + 1) as u64);
        assert!(read_frame(&mut io::Cursor::new(wire)).is_err());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut wire = Vec::new();
        FrameWriter::new().u64(1).send(&mut wire).unwrap();
        FrameWriter::new().u64(2).send(&mut wire).unwrap();
        let mut cur = io::Cursor::new(wire);
        let f1 = read_frame(&mut cur).unwrap();
        let f2 = read_frame(&mut cur).unwrap();
        assert_eq!(FrameReader::new(&f1).u64().unwrap(), 1);
        assert_eq!(FrameReader::new(&f2).u64().unwrap(), 2);
    }
}
