//! Connectivity profiles: what a node knows about its own position in the
//! network (paper Section 3.4's decision inputs — firewall, NAT, bootstrap).

use gridsim_net::SockAddr;
use std::io;

use crate::wire::{FrameReader, FrameWriter};

/// The node's site firewall, as relevant to connection establishment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirewallClass {
    /// No inbound filtering: the node can accept client/server connections.
    None,
    /// Stateful outbound-only firewall: inbound blocked, outbound free —
    /// TCP splicing crosses it (paper Fig. 2).
    Stateful,
    /// The paper's "severe firewall": outbound only through the site proxy.
    Strict,
}

/// What the node knows about its NAT, in the terms that matter for splicing
/// port prediction (paper §6: splicing works "only with NAT gateways based
/// on a known and predictable port translation rule").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NatClass {
    /// Cone NAT: one external port per internal endpoint — the observed
    /// mapping is directly reusable.
    Cone,
    /// Symmetric NAT with sequential allocation: the next mapping is
    /// predictable from a probe.
    SymmetricPredictable,
    /// Symmetric NAT with random allocation: prediction fails; splicing is
    /// not attempted (the paper's "not fully standards-compliant" NATs).
    SymmetricRandom,
}

impl NatClass {
    pub fn predictable(self) -> bool {
        !matches!(self, NatClass::SymmetricRandom)
    }
}

/// A node's connectivity profile: the decision-tree inputs plus the
/// information peers need to reach it.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnectivityProfile {
    pub firewall: FirewallClass,
    pub nat: Option<NatClass>,
    /// The node's addresses are RFC 1918 private (unroutable from outside
    /// without NAT or a relay).
    pub private_addr: bool,
    /// SOCKS proxy on the site gateway, if the site operates one.
    pub socks_proxy: Option<SockAddr>,
}

impl ConnectivityProfile {
    /// A fully open, publicly addressed node.
    pub fn open() -> ConnectivityProfile {
        ConnectivityProfile {
            firewall: FirewallClass::None,
            nat: None,
            private_addr: false,
            socks_proxy: None,
        }
    }

    /// Behind a stateful firewall, public addresses.
    pub fn firewalled() -> ConnectivityProfile {
        ConnectivityProfile {
            firewall: FirewallClass::Stateful,
            ..ConnectivityProfile::open()
        }
    }

    /// Behind NAT (implies private addressing).
    pub fn natted(class: NatClass) -> ConnectivityProfile {
        ConnectivityProfile {
            firewall: FirewallClass::None,
            nat: Some(class),
            private_addr: true,
            socks_proxy: None,
        }
    }

    /// Builder: site SOCKS proxy.
    pub fn with_proxy(mut self, proxy: SockAddr) -> Self {
        self.socks_proxy = Some(proxy);
        self
    }

    /// Can this node accept a plain client/server TCP connection from an
    /// arbitrary remote host?
    pub fn accepts_inbound(&self) -> bool {
        self.firewall == FirewallClass::None && self.nat.is_none() && !self.private_addr
    }

    /// Can this node initiate a direct outbound TCP connection to an
    /// arbitrary public host?
    pub fn can_dial_out(&self) -> bool {
        self.firewall != FirewallClass::Strict
    }

    /// Does splicing stand a chance from/to this node? A strict firewall
    /// forbids it; an unpredictable NAT defeats port prediction.
    pub fn splice_capable(&self) -> bool {
        self.firewall != FirewallClass::Strict && self.nat.map(|n| n.predictable()).unwrap_or(true)
    }

    // ---- wire encoding (stored in the name service) ----

    pub fn encode(&self, w: FrameWriter) -> FrameWriter {
        let fw = match self.firewall {
            FirewallClass::None => 0,
            FirewallClass::Stateful => 1,
            FirewallClass::Strict => 2,
        };
        let nat = match self.nat {
            None => 0,
            Some(NatClass::Cone) => 1,
            Some(NatClass::SymmetricPredictable) => 2,
            Some(NatClass::SymmetricRandom) => 3,
        };
        w.u8(fw)
            .u8(nat)
            .u8(self.private_addr as u8)
            .opt_addr(self.socks_proxy)
    }

    pub fn decode(r: &mut FrameReader<'_>) -> io::Result<ConnectivityProfile> {
        let fw = match r.u8()? {
            0 => FirewallClass::None,
            1 => FirewallClass::Stateful,
            2 => FirewallClass::Strict,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad firewall class",
                ))
            }
        };
        let nat = match r.u8()? {
            0 => None,
            1 => Some(NatClass::Cone),
            2 => Some(NatClass::SymmetricPredictable),
            3 => Some(NatClass::SymmetricRandom),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad nat class")),
        };
        let private_addr = r.u8()? != 0;
        let socks_proxy = r.opt_addr()?;
        Ok(ConnectivityProfile {
            firewall: fw,
            nat,
            private_addr,
            socks_proxy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_net::Ip;

    #[test]
    fn encode_decode_roundtrip() {
        let profiles = [
            ConnectivityProfile::open(),
            ConnectivityProfile::firewalled(),
            ConnectivityProfile::natted(NatClass::Cone),
            ConnectivityProfile::natted(NatClass::SymmetricRandom)
                .with_proxy(SockAddr::new(Ip::new(131, 9, 0, 1), 1080)),
            ConnectivityProfile {
                firewall: FirewallClass::Strict,
                nat: None,
                private_addr: false,
                socks_proxy: Some(SockAddr::new(Ip::new(131, 9, 0, 1), 1080)),
            },
        ];
        for p in profiles {
            let bytes = p.encode(FrameWriter::new()).into_bytes();
            let mut r = FrameReader::new(&bytes);
            assert_eq!(ConnectivityProfile::decode(&mut r).unwrap(), p);
        }
    }

    #[test]
    fn capability_predicates() {
        assert!(ConnectivityProfile::open().accepts_inbound());
        assert!(!ConnectivityProfile::firewalled().accepts_inbound());
        assert!(ConnectivityProfile::firewalled().splice_capable());
        assert!(ConnectivityProfile::natted(NatClass::SymmetricPredictable).splice_capable());
        assert!(!ConnectivityProfile::natted(NatClass::SymmetricRandom).splice_capable());
        let strict = ConnectivityProfile {
            firewall: FirewallClass::Strict,
            nat: None,
            private_addr: false,
            socks_proxy: None,
        };
        assert!(!strict.can_dial_out());
        assert!(!strict.splice_capable());
    }
}
