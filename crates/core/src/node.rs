//! The grid node runtime: identity, registration, service links, and the
//! integrated connection establishment that the paper contributes —
//! client/server, TCP splicing with NAT port prediction, SOCKS proxies and
//! relay-routed messages behind one API, chosen by the Figure-4 decision
//! tree with runtime fallback.
//!
//! Establishment feeds the *session layer* ([`crate::session`]): the node
//! keeps a [`LinkTable`] of established data links keyed by
//! `(peer node, stack spec)`, and every channel between one node pair
//! rides ONE shared, supervised link. Concurrent `connect()`s to the same
//! peer are deduplicated to a single Figure-4 walk, and a link failure
//! triggers ONE re-establishment that replays every attached channel.

use gridcrypt::SecureConfig;
use gridsim_net::{Net, SchedHandle, SockAddr};
use gridsim_tcp::{ConnectOpts, SimHost, TcpConfig, TcpStream};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use crate::cpu::{CpuModel, CpuRates, HostCpu};
use crate::drivers::{build_sender_parts, PathParams, RawLink, SecurityContext, StackSpec};
use crate::establish::{choose_methods, EstablishMethod, LinkKey, LinkPurpose};
use crate::nameservice::{GridId, NsClient, PortRecord};
use crate::port::{
    AckCell, AckSender, ReceivePort, ReceivePortInner, ResumeMeta, RxShared, SendConnection,
    SendPort,
};
use crate::profile::{ConnectivityProfile, FirewallClass, NatClass};
use crate::relay::{RelayClient, RelayDelegate, RoutedStream};
use crate::session::{Channel, Claim, LinkIo, LinkTable, RecoveryRole, SharedLink};
use crate::socks::socks_connect;
use crate::tune::{PathControlConfig, PathController};
use crate::wire::{read_frame, FrameReader, FrameWriter};

/// High bit of the stream preamble's channel field: set when the
/// connection *resumes* an existing channel after a detected failure (the
/// preamble then carries a fourth field, the reconnect generation). Fresh
/// connects never set it, so fault-free preambles stay byte-identical.
pub(crate) const RESUME_FLAG: u64 = 1 << 63;

/// Second-highest preamble bit: the resumed link is *multiplexed* — the
/// preamble carries, after the generation, the list of extra channels
/// (id + receive-port name) riding the link, so the receiver can register
/// their routes before the replay arrives. Single-channel resumes never
/// set it, keeping their preambles byte-identical to the pre-session
/// format.
pub(crate) const MUX_FLAG: u64 = 1 << 62;

/// Upper bound on the extra-channel list a resume preamble may carry
/// (sanity against corrupt frames).
const MAX_MUX_CHANNELS: u64 = 1 << 16;

/// Reconnect schedule for failed data links: attempts and backoff.
const RECOVER_ATTEMPTS: u32 = 8;
const RECOVER_BASE: Duration = Duration::from_millis(50);
const RECOVER_DELAY_CAP: Duration = Duration::from_secs(2);
/// How long a resuming sender waits for the receiver's delivered-count
/// reply before abandoning the attempt (polled, so a second failure during
/// resume cannot wedge recovery).
const RESUME_REPLY_TIMEOUT: Duration = Duration::from_secs(10);
/// Service-request deadline used during recovery, where the peer may have
/// died mid-request. Fault-free establishment passes no deadline (and thus
/// schedules no timer events).
const RECOVER_SVC_TIMEOUT: Duration = Duration::from_secs(5);

/// First local port used for receive-port data listeners.
const DATA_PORT_BASE: u16 = 20_000;
/// First local port used for spliced connections (distinct from the
/// ephemeral range 10000+, data listeners 20000+, NAT mappings 40000+).
const SPLICE_PORT_BASE: u16 = 31_000;

/// What a resuming sender tells the receiver in the preamble: the
/// reconnect generation, plus the extra channels multiplexed on the link
/// (beyond the anchor channel the preamble itself names).
pub(crate) struct ResumePlan {
    pub gen: u64,
    /// `(channel id, receive-port name)` of every non-anchor channel.
    pub extras: Vec<(u64, String)>,
}

/// How receive-side pumps resolve OPEN frames (and resume extras) to
/// receive ports by name: a weak hook back into the node's port table.
pub(crate) type PortResolver = Arc<dyn Fn(&str) -> Option<Arc<ReceivePortInner>> + Send + Sync>;

/// Shared environment of one grid deployment: where the name service and
/// relay live, plus the security and CPU models.
#[derive(Clone)]
pub struct GridEnv {
    pub net: Net,
    pub ns_addr: SockAddr,
    pub relay_addr: Option<SockAddr>,
    /// Ordered failover relays dialed (after `relay_addr`) when the
    /// current relay stays dead past the redial backoff. Every node must
    /// share the order so failed-over peers converge on the same relay.
    pub relay_fallbacks: Vec<SockAddr>,
    /// The virtual organization's shared secret, for GTLS stacks.
    pub psk: Vec<u8>,
    pub cpu: CpuModel,
    pub rates: CpuRates,
    /// Per-channel resend-buffer byte budget (replay window).
    pub resend_budget: usize,
    /// Receiver cumulative-ack cadence: one CACK service frame per this
    /// many delivered bytes. `usize::MAX` disables the ack protocol.
    pub ack_bytes: usize,
    /// When set, every established data link gets a [`PathController`]
    /// daemon sampling its transport telemetry and issuing live RECONFIGs
    /// (DESIGN.md §11). Off by default: fault-free wire traces stay
    /// byte-identical unless a deployment opts in.
    pub path_control: Option<PathControlConfig>,
}

impl GridEnv {
    pub fn new(net: Net, ns_addr: SockAddr) -> GridEnv {
        GridEnv {
            net,
            ns_addr,
            relay_addr: None,
            relay_fallbacks: Vec::new(),
            psk: b"netgrid-vo-secret".to_vec(),
            cpu: CpuModel::new(),
            rates: CpuRates::default(),
            resend_budget: crate::port::RESEND_BUDGET,
            ack_bytes: crate::port::ACK_BYTES_DEFAULT,
            path_control: None,
        }
    }

    pub fn with_relay(mut self, relay: SockAddr) -> Self {
        self.relay_addr = Some(relay);
        self
    }

    /// Configure an ordered relay list: the first is the primary every
    /// node dials at join; the rest are failover targets.
    ///
    /// With legacy relays ([`crate::spawn_relay`]) every node must share
    /// the same order, so failed-over peers converge on one relay. Meshed
    /// relays ([`crate::spawn_relay_mesh`]) lift that: nodes may home at
    /// different relays (or permute the list for load spreading), and a
    /// node that fails over to its backup is route-around-able by live
    /// senders through the mesh routing table — their channels stay up and
    /// recover in place rather than tearing down.
    pub fn with_relays(mut self, relays: &[SockAddr]) -> Self {
        self.relay_addr = relays.first().copied();
        self.relay_fallbacks = relays.get(1..).unwrap_or_default().to_vec();
        self
    }

    pub fn with_psk(mut self, psk: impl Into<Vec<u8>>) -> Self {
        self.psk = psk.into();
        self
    }

    pub fn with_rates(mut self, rates: CpuRates) -> Self {
        self.rates = rates;
        self
    }

    /// Cap the per-channel resend buffer. The ack cadence follows (an
    /// eighth of the cap, at least 16 KiB) so continuous pruning keeps
    /// steady-state usage under the cap instead of hitting eviction. The
    /// cadence must leave room for in-flight pipe buffering on top of the
    /// unacked window — the routed path traverses four socket buffers.
    pub fn with_resend_budget(mut self, bytes: usize) -> Self {
        self.resend_budget = bytes.max(1);
        self.ack_bytes = (bytes / 8).max(16 * 1024);
        self
    }

    /// Override the ack cadence independently of the resend budget.
    pub fn with_ack_bytes(mut self, bytes: usize) -> Self {
        self.ack_bytes = bytes.max(1);
        self
    }

    /// Enable the session-layer path control loop: each data link gets a
    /// deterministic [`PathController`] that samples transport telemetry
    /// and reconfigures stripe count, block size and compression live.
    pub fn with_path_control(mut self, cfg: PathControlConfig) -> Self {
        self.path_control = Some(cfg);
        self
    }
}

/// Handed to receive ports so their accept paths can build stacks.
#[derive(Clone)]
pub struct NodeCtx {
    pub cpu: HostCpu,
    pub sched: SchedHandle,
    pub psk: Vec<u8>,
    pub seed_base: u64,
    /// Resolves receive-port names for mux routing (OPEN frames, resume
    /// extras).
    pub(crate) resolve: PortResolver,
}

impl NodeCtx {
    /// Security context for a stack, if the spec asks for one.
    pub fn security(&self, spec: &StackSpec) -> Option<SecurityContext> {
        spec.secure.then(|| SecurityContext {
            config: SecureConfig::new(self.psk.clone()),
            seed: self.seed_base,
        })
    }
}

pub(crate) struct NodeInner {
    env: GridEnv,
    host: SimHost,
    name: String,
    id: GridId,
    profile: ConnectivityProfile,
    ns: NsClient,
    relay: Option<RelayClient>,
    cpu: HostCpu,
    ports: Mutex<HashMap<String, Arc<ReceivePortInner>>>,
    next_data_port: AtomicU64,
    next_splice_port: AtomicU64,
    next_channel: AtomicU64,
    seed_base: u64,
    /// Serializes NAT-mapping-creating operations on this node so that
    /// splicing port predictions hold: a symmetric NAT allocates one
    /// external port per outbound flow, so any concurrent connection
    /// between "predict" and "SYN" would shift the counter.
    nat_gate: NatGate,
    /// Responder-side splice negotiations awaiting the initiator's GO.
    pending_splices: Mutex<HashMap<u64, PendingSplice>>,
    /// Cumulative-ack watermarks of this node's open send channels, keyed
    /// by channel id, advanced by incoming CACK service frames.
    ack_cells: Mutex<HashMap<u64, Arc<AckCell>>>,
    /// The session layer's cache of established data links (at most one
    /// per peer + stack spec).
    links: LinkTable,
    /// OPEN / OPEN_BATCH control frames this node has written — the
    /// batching probe: a batch of N attaches must cost one frame, not N.
    open_frames: AtomicU64,
    /// Receive-side per-channel state shared across this node's receive
    /// ports (delivered watermarks + ack bookkeeping): mux links can carry
    /// channels of several ports, and a resume can re-anchor a channel on
    /// a different port's listener.
    rx: Arc<RxShared>,
}

struct PendingSplice {
    port: Arc<ReceivePortInner>,
    my_ports: Vec<u16>,
    total: u16,
    /// This negotiation holds the NAT gate until GO/ABORT.
    holds_gate: bool,
}

/// A FIFO gate (non-RAII mutex) that can be held across separate service
/// handler invocations.
#[derive(Default)]
struct NatGate {
    state: Mutex<(bool, std::collections::VecDeque<gridsim_net::Waker>)>,
}

impl NatGate {
    fn acquire(&self) {
        loop {
            {
                let mut st = self.state.lock();
                if !st.0 {
                    st.0 = true;
                    return;
                }
                st.1.push_back(gridsim_net::ctx::waker());
            }
            gridsim_net::ctx::park("nat gate");
        }
    }
    fn release(&self) {
        let mut st = self.state.lock();
        st.0 = false;
        if let Some(w) = st.1.pop_front() {
            w.wake();
        }
    }
}

/// A node participating in the grid.
#[derive(Clone)]
pub struct GridNode {
    inner: Arc<NodeInner>,
}

impl GridNode {
    /// Join the grid: register with the name service and connect the
    /// service link to the relay (if one is configured). Must run inside a
    /// simulated task on the node's host.
    pub fn join(
        env: &GridEnv,
        host: SimHost,
        name: &str,
        profile: ConnectivityProfile,
    ) -> io::Result<GridNode> {
        // A strictly firewalled site reaches public services only through
        // its own proxy.
        let via_proxy = if profile.firewall == FirewallClass::Strict {
            profile.socks_proxy
        } else {
            None
        };
        let ns = NsClient::new(host.clone(), env.ns_addr, via_proxy);
        // Publish the ordered relay list only when there are fallbacks —
        // single-relay deployments keep their registration frames (and
        // wire traces) byte-identical.
        let mut relay_list: Vec<SockAddr> = Vec::new();
        if !env.relay_fallbacks.is_empty() {
            relay_list.extend(env.relay_addr);
            relay_list.extend(env.relay_fallbacks.iter().copied());
        }
        let id = ns.register(name, &profile, &relay_list)?;
        let relay = match env.relay_addr {
            Some(addr) => {
                let mut addrs = vec![addr];
                addrs.extend(env.relay_fallbacks.iter().copied());
                Some(RelayClient::connect_multi(&host, addrs, via_proxy, id)?)
            }
            None => None,
        };
        let seed_base = env.net.with(|w| rand::Rng::random::<u64>(w.rng()));
        let cpu = HostCpu::new(env.cpu.clone(), host.node(), env.rates);
        let inner = Arc::new(NodeInner {
            env: env.clone(),
            host,
            name: name.to_string(),
            id,
            profile,
            ns,
            relay: relay.clone(),
            cpu,
            ports: Mutex::new(HashMap::new()),
            next_data_port: AtomicU64::new(DATA_PORT_BASE as u64),
            next_splice_port: AtomicU64::new(SPLICE_PORT_BASE as u64),
            next_channel: AtomicU64::new(1),
            seed_base,
            nat_gate: NatGate::default(),
            pending_splices: Mutex::new(HashMap::new()),
            ack_cells: Mutex::new(HashMap::new()),
            links: LinkTable::new(),
            open_frames: AtomicU64::new(0),
            rx: RxShared::new(),
        });
        let node = GridNode { inner };
        if let Some(r) = relay {
            r.set_delegate(Arc::new(NodeDelegate {
                inner: Arc::downgrade(&node.inner),
            }));
        }
        Ok(node)
    }

    /// Join with an automatically detected connectivity profile (paper §8
    /// future work): the node classifies its own NAT via STUN-style probes
    /// and tests inbound reachability with a name-service connect-back.
    /// Sites that require a SOCKS proxy must still use [`GridNode::join`]
    /// with an explicit profile (a strictly-proxied node cannot probe).
    pub fn join_auto(env: &GridEnv, host: SimHost, name: &str) -> io::Result<GridNode> {
        let ns = NsClient::new(host.clone(), env.ns_addr, None);
        let profile = ns.detect_profile()?;
        Self::join(env, host, name, profile)
    }

    pub fn id(&self) -> GridId {
        self.inner.id
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub fn profile(&self) -> &ConnectivityProfile {
        &self.inner.profile
    }

    pub fn host(&self) -> &SimHost {
        &self.inner.host
    }

    pub fn ns(&self) -> &NsClient {
        &self.inner.ns
    }

    pub fn cpu(&self) -> &HostCpu {
        &self.inner.cpu
    }

    /// Established data links right now (the session layer's link cache).
    /// N same-spec channels to one peer count as ONE link here.
    pub fn data_link_count(&self) -> usize {
        self.inner.links.ready_count()
    }

    /// Fresh Figure-4 establishment walks this node has run — the
    /// single-flight dedupe probe: racing `connect()`s to the same peer
    /// must not add more than one.
    pub fn establishment_walks(&self) -> u64 {
        self.inner.links.walks()
    }

    /// Completed link-level recoveries: each re-established ONE shared
    /// link and replayed every channel attached to it.
    pub fn link_recoveries(&self) -> u64 {
        self.inner.links.recoveries()
    }

    /// Times a sharded relay BUSY-throttled this node's routed writes —
    /// the typed-backpressure probe (always 0 against a legacy relay).
    pub fn relay_busy_throttles(&self) -> u64 {
        self.inner.relay.as_ref().map_or(0, |r| r.busy_throttles())
    }

    /// OPEN / OPEN_BATCH control frames written by this node's senders —
    /// the batching probe. A fresh link's anchor channel rides the stream
    /// preamble (no frame); each later single attach costs one OPEN; a
    /// batch of N extras costs exactly one OPEN_BATCH.
    pub fn open_control_frames(&self) -> u64 {
        self.inner.open_frames.load(Ordering::Relaxed)
    }

    fn ctx(&self) -> NodeCtx {
        let weak = Arc::downgrade(&self.inner);
        NodeCtx {
            cpu: self.inner.cpu.clone(),
            sched: self.inner.env.net.sched().clone(),
            psk: self.inner.env.psk.clone(),
            seed_base: self.inner.seed_base,
            resolve: Arc::new(move |name: &str| {
                weak.upgrade()
                    .and_then(|inner| inner.ports.lock().get(name).cloned())
            }),
        }
    }

    fn alloc_channel(&self) -> u64 {
        (self.inner.id << 24) | self.inner.next_channel.fetch_add(1, Ordering::Relaxed)
    }

    /// Does this node need the NAT gate at all? Only symmetric NATs
    /// allocate one external port per *flow*, so only they make port
    /// predictions order-sensitive. A cone NAT maps per internal endpoint:
    /// concurrent flows cannot shift each other's mappings, so gating them
    /// would only serialize a connection storm for nothing — walks to
    /// unrelated peers run concurrently (single-flight stays per-LinkKey).
    fn nat_serializes(&self) -> bool {
        matches!(
            self.inner.profile.nat,
            Some(NatClass::SymmetricPredictable | NatClass::SymmetricRandom)
        )
    }

    /// Run `f` while holding the NAT gate (no-op unless the node's NAT
    /// makes mapping creation order-sensitive — see [`Self::nat_serializes`]).
    fn nat_gated<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.nat_serializes() {
            self.inner.nat_gate.acquire();
            let r = f();
            self.inner.nat_gate.release();
            r
        } else {
            f()
        }
    }

    fn alloc_splice_ports(&self, n: u16) -> Vec<u16> {
        (0..n)
            .map(|_| self.inner.next_splice_port.fetch_add(1, Ordering::Relaxed) as u16)
            .collect()
    }

    // ------------------------------------------------------------ ports

    /// Create a named receive port with the given driver-stack spec. The
    /// spec is registered in the name service, so senders assemble the
    /// matching stack automatically.
    pub fn create_receive_port(&self, name: &str, spec: StackSpec) -> io::Result<ReceivePort> {
        let data_port = self.inner.next_data_port.fetch_add(1, Ordering::Relaxed) as u16;
        let listener = self.inner.host.listen(data_port)?;
        let listen_addr = SockAddr::new(self.inner.host.ip(), data_port);
        self.nat_gated(|| {
            self.inner
                .ns
                .register_port(self.inner.id, name, Some(listen_addr), &spec.encode())
        })?;
        // The receive port acks over the service link when one exists;
        // without a relay the watermark still travels in resume replies.
        let ack = match &self.inner.relay {
            Some(r) if self.inner.env.ack_bytes != usize::MAX => Some(AckSender {
                relay: r.clone(),
                sched: self.inner.env.net.sched().clone(),
                every: self.inner.env.ack_bytes,
            }),
            _ => None,
        };
        let inner = ReceivePortInner::new(name.to_string(), spec, ack, Arc::clone(&self.inner.rx));
        self.inner
            .ports
            .lock()
            .insert(name.to_string(), Arc::clone(&inner));
        // Accept loop: native-TCP connections (client/server and proxied).
        let port = Arc::clone(&inner);
        let node = self.clone();
        let sched = self.inner.env.net.sched().clone();
        let sched2 = sched.clone();
        sched.spawn_daemon(format!("rp-accept-{name}"), move || loop {
            let Ok(stream) = listener.accept() else { break };
            let port = Arc::clone(&port);
            let node = node.clone();
            sched2.spawn_daemon("rp-incoming", move || {
                let _ = node.handle_incoming_tcp(&port, stream);
            });
        });
        Ok(ReceivePort {
            node: self.clone(),
            inner,
        })
    }

    /// Create a send port (connect it with [`SendPort::connect`]).
    pub fn create_send_port(&self) -> SendPort {
        SendPort::new(self.clone())
    }

    pub(crate) fn forget_port(&self, name: &str) {
        self.inner.ports.lock().remove(name);
    }

    /// Read the stream preamble and register the link with the port.
    fn handle_incoming_tcp(
        &self,
        port: &Arc<ReceivePortInner>,
        stream: TcpStream,
    ) -> io::Result<()> {
        stream.set_nodelay(true)?;
        let mut r = stream.clone();
        let frame = read_frame(&mut r)?;
        let mut fr = FrameReader::new(&frame);
        let raw = fr.u64()?;
        let idx = fr.u64()? as u16;
        let total = fr.u64()? as u16;
        let channel = raw & !(RESUME_FLAG | MUX_FLAG);
        if raw & RESUME_FLAG != 0 {
            let gen = fr.u64()?;
            let extras = if raw & MUX_FLAG != 0 {
                read_mux_extras(&mut fr)?
            } else {
                Vec::new()
            };
            port.add_resume_link(
                &self.ctx(),
                channel,
                idx,
                total,
                ResumeMeta { gen, extras },
                RawLink::Tcp(stream),
            )
        } else {
            port.add_raw_link(&self.ctx(), channel, idx, total, RawLink::Tcp(stream))
        }
    }

    // ------------------------------------------------- establishment

    /// Establish a data connection to a named receive port. The session
    /// layer deduplicates: if an established link to that peer with the
    /// same effective stack spec already exists, the new channel attaches
    /// to it (announced with an OPEN frame) instead of re-running the
    /// Figure-4 walk. Used by [`SendPort::connect`].
    /// `streams_override` replaces the registered stream count (receive
    /// ports accept any count — the stream preamble is authoritative),
    /// which is what stream-count autotuning builds on.
    pub(crate) fn establish_connection(
        &self,
        port_name: &str,
        streams_override: Option<u16>,
    ) -> io::Result<SendConnection> {
        let channel = self.alloc_channel();
        let conn = self.establish_channel(port_name, streams_override, channel)?;
        // Register the channel's ack watermark so CACK service frames
        // arriving on the relay pump reach it. Survives recovery: the
        // cell rides the channel, not the link.
        self.inner
            .ack_cells
            .lock()
            .insert(channel, Arc::clone(&conn.chan.acked));
        Ok(conn)
    }

    /// Open `count` channels to the named receive port in one batch,
    /// returning one single-connection [`SendPort`] per channel —
    /// semantically identical to `count` separate `connect()`s, but the
    /// whole batch pays ONE name-service lookup, ONE link claim (a single
    /// Figure-4 walk when the link is fresh) and ONE `OPEN_BATCH` control
    /// frame, where sequential connects pay a lookup round trip and an
    /// OPEN frame per channel.
    pub fn connect_batch(&self, port_name: &str, count: usize) -> io::Result<Vec<SendPort>> {
        let conns = self.establish_connections_batch(port_name, None, count)?;
        let mut cells = self.inner.ack_cells.lock();
        for conn in &conns {
            cells.insert(conn.chan.channel, Arc::clone(&conn.chan.acked));
        }
        drop(cells);
        Ok(conns
            .into_iter()
            .map(|conn| SendPort::with_connection(self.clone(), conn))
            .collect())
    }

    /// Batched form of [`Self::establish_channel`]: resolve the peer once,
    /// claim the link once, attach every channel, announce the batch.
    fn establish_connections_batch(
        &self,
        port_name: &str,
        streams_override: Option<u16>,
        count: usize,
    ) -> io::Result<Vec<SendConnection>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let (rec, peer_profile, _peer_name) =
            self.nat_gated(|| self.inner.ns.lookup_port(port_name))?;
        let mut spec = StackSpec::decode(&rec.stack)?;
        if let Some(n) = streams_override {
            spec.path.stripes = n.max(1);
        }
        let key = LinkKey::new(rec.owner, &spec);
        let channels: Vec<u64> = (0..count).map(|_| self.alloc_channel()).collect();
        let new_chan =
            |ch: u64| Arc::new(Channel::new(ch, port_name, self.inner.env.resend_budget));
        loop {
            match self.inner.links.claim(&key) {
                Claim::Ready(link) => {
                    let chans: Vec<Arc<Channel>> = channels.iter().copied().map(new_chan).collect();
                    let attached = chans
                        .iter()
                        .take_while(|c| link.attach(Arc::clone(c)))
                        .count();
                    if attached < chans.len() {
                        // The link is tearing down; undo the partial batch,
                        // GC the stale entry and re-claim (next round
                        // establishes fresh).
                        for c in &chans[..attached] {
                            link.detach(c.channel);
                        }
                        self.inner.links.remove(&key, &link);
                        continue;
                    }
                    if let Err(e) = self.open_batch_on_link(&link, &chans) {
                        for c in &chans {
                            link.detach(c.channel);
                        }
                        self.gc_link_if_empty(&key, &link);
                        return Err(e);
                    }
                    return Ok(chans
                        .into_iter()
                        .map(|chan| SendConnection {
                            link: Arc::clone(&link),
                            chan,
                        })
                        .collect());
                }
                Claim::Mine => {
                    // The first channel anchors the walk (announced by the
                    // stream preamble itself); the rest of the batch rides
                    // one OPEN_BATCH frame behind it.
                    let result = self.establish_link(
                        &key,
                        &rec,
                        &peer_profile,
                        &spec,
                        channels[0],
                        port_name,
                    );
                    self.inner.links.walk_done();
                    let anchor = match result {
                        Ok(conn) => {
                            self.inner.links.fulfill(&key, &conn.link);
                            conn
                        }
                        Err(e) => {
                            self.inner.links.abandon(&key);
                            return Err(e);
                        }
                    };
                    let link = Arc::clone(&anchor.link);
                    let extras: Vec<Arc<Channel>> =
                        channels[1..].iter().copied().map(new_chan).collect();
                    // A just-established link still holds its anchor, so it
                    // cannot be closing: attach cannot fail here.
                    for c in &extras {
                        assert!(link.attach(Arc::clone(c)), "fresh link refused attach");
                    }
                    if let Err(e) = self.open_batch_on_link(&link, &extras) {
                        for c in &extras {
                            link.detach(c.channel);
                        }
                        return Err(e);
                    }
                    let mut conns = vec![anchor];
                    conns.extend(extras.into_iter().map(|chan| SendConnection {
                        link: Arc::clone(&link),
                        chan,
                    }));
                    return Ok(conns);
                }
            }
        }
    }

    /// Unregister a closed channel's ack watermark.
    pub(crate) fn release_channel(&self, channel: u64) {
        self.inner.ack_cells.lock().remove(&channel);
    }

    /// Resolve the peer + spec, then either attach to the cached link or
    /// run establishment (single-flight per link key).
    fn establish_channel(
        &self,
        port_name: &str,
        streams_override: Option<u16>,
        channel: u64,
    ) -> io::Result<SendConnection> {
        let (rec, peer_profile, _peer_name) =
            self.nat_gated(|| self.inner.ns.lookup_port(port_name))?;
        let mut spec = StackSpec::decode(&rec.stack)?;
        if let Some(n) = streams_override {
            spec.path.stripes = n.max(1);
        }
        let key = LinkKey::new(rec.owner, &spec);
        loop {
            match self.inner.links.claim(&key) {
                Claim::Ready(link) => {
                    let chan = Arc::new(Channel::new(
                        channel,
                        port_name,
                        self.inner.env.resend_budget,
                    ));
                    if !link.attach(Arc::clone(&chan)) {
                        // The link is tearing down; GC the stale entry and
                        // re-claim (next round establishes fresh).
                        self.inner.links.remove(&key, &link);
                        continue;
                    }
                    if let Err(e) = self.open_on_link(&link, &chan) {
                        link.detach(channel);
                        self.gc_link_if_empty(&key, &link);
                        return Err(e);
                    }
                    return Ok(SendConnection { link, chan });
                }
                Claim::Mine => {
                    let result =
                        self.establish_link(&key, &rec, &peer_profile, &spec, channel, port_name);
                    self.inner.links.walk_done();
                    return match result {
                        Ok(conn) => {
                            self.inner.links.fulfill(&key, &conn.link);
                            Ok(conn)
                        }
                        Err(e) => {
                            self.inner.links.abandon(&key);
                            Err(e)
                        }
                    };
                }
            }
        }
    }

    /// Announce a channel joining an established link. Rewritten after
    /// any recovery observed mid-open: a recovery whose replay snapshot
    /// predated our attach did not announce us, and the receiver treats
    /// duplicate OPENs as no-ops, so always-rewrite is safe.
    fn open_on_link(&self, link: &Arc<SharedLink>, chan: &Arc<Channel>) -> io::Result<()> {
        loop {
            let seen = link.incarnation();
            let wrote = {
                let mut io = link.io();
                if io.healthy() {
                    io.write_open(chan.channel, &chan.peer_port).is_ok()
                } else {
                    false
                }
            };
            if wrote {
                self.inner.open_frames.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            self.recover_link(link, seen)?;
        }
    }

    /// Announce a batch of channels joining an established link with ONE
    /// `OPEN_BATCH` control frame. Same recovery contract as
    /// [`Self::open_on_link`]: the whole batch is rewritten after any
    /// recovery observed mid-open — the receiver treats every entry
    /// idempotently, so always-rewrite is safe.
    fn open_batch_on_link(&self, link: &Arc<SharedLink>, chans: &[Arc<Channel>]) -> io::Result<()> {
        if chans.is_empty() {
            return Ok(());
        }
        let entries: Vec<(u64, &str)> = chans
            .iter()
            .map(|c| (c.channel, c.peer_port.as_str()))
            .collect();
        loop {
            let seen = link.incarnation();
            let wrote = {
                let mut io = link.io();
                if io.healthy() {
                    io.write_open_batch(&entries).is_ok()
                } else {
                    false
                }
            };
            if wrote {
                self.inner.open_frames.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            self.recover_link(link, seen)?;
        }
    }

    /// One full walk of the decision tree for a fresh link, anchored at
    /// `channel`.
    fn establish_link(
        &self,
        key: &LinkKey,
        rec: &PortRecord,
        peer_profile: &ConnectivityProfile,
        spec: &StackSpec,
        channel: u64,
        port_name: &str,
    ) -> io::Result<SendConnection> {
        self.inner.links.note_walk();
        let methods = choose_methods(&self.inner.profile, peer_profile, LinkPurpose::Data);
        let mut last_err = io::Error::new(
            io::ErrorKind::NotFound,
            "no establishment method applicable",
        );
        for method in methods {
            match self.try_method(method, rec, peer_profile, spec, channel, None) {
                Ok((links, total)) => match self.build_link_io(links, total, spec, None) {
                    Ok((io, _)) => {
                        let chan = Arc::new(Channel::new(
                            channel,
                            port_name,
                            self.inner.env.resend_budget,
                        ));
                        let link = Arc::new(SharedLink::new(
                            key.clone(),
                            spec.clone(),
                            method,
                            io,
                            channel,
                        ));
                        link.attach(Arc::clone(&chan));
                        self.spawn_path_controller(&link);
                        return Ok(SendConnection { link, chan });
                    }
                    Err(e) => {
                        if std::env::var("NETGRID_DEBUG").is_ok() {
                            eprintln!("[netgrid] method {method} stack failed: {e}");
                        }
                        last_err = e;
                    }
                },
                Err(e) => {
                    if std::env::var("NETGRID_DEBUG").is_ok() {
                        eprintln!("[netgrid] method {method} failed: {e}");
                    }
                    last_err = e;
                }
            }
        }
        Err(io::Error::new(
            last_err.kind(),
            format!("all establishment methods failed for '{port_name}': {last_err}"),
        ))
    }

    /// Read the resume reply (if resuming) and assemble the sender stack.
    /// `resume_expect` is the number of delivered-count values the reply
    /// must carry (anchor first, then the extras in preamble order).
    fn build_link_io(
        &self,
        links: Vec<RawLink>,
        total: u16,
        spec: &StackSpec,
        resume_expect: Option<usize>,
    ) -> io::Result<(LinkIo, Vec<u64>)> {
        let deliveries = if let Some(n) = resume_expect {
            // The receiver replies on stream 0 once every stream arrived.
            // Poll readability first: a plain blocking read on a link that
            // dies again right here would park forever.
            let mut l0 = links[0].clone();
            let ready = wait_until(RESUME_REPLY_TIMEOUT, Duration::from_millis(10), || {
                link_readable(&l0)
            });
            if !ready {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no resume reply from receiver",
                ));
            }
            let frame = read_frame(&mut l0)?;
            let mut fr = FrameReader::new(&frame);
            (0..n).map(|_| fr.u64()).collect::<io::Result<Vec<_>>>()?
        } else {
            Vec::new()
        };
        let spec_eff = spec.clone().with_streams(total.max(1));
        let ctx = self.ctx();
        let sec = ctx.security(&spec_eff);
        let probes = links.clone();
        let (writer, pool, term) =
            build_sender_parts(links, &spec_eff, self.inner.cpu.clone(), sec.as_ref())?;
        Ok((
            LinkIo {
                writer,
                pool,
                active: probes.len(),
                links: probes,
                term,
                mux: false,
            },
            deliveries,
        ))
    }

    // -------------------------------------------- live reconfiguration

    /// Switch a link's path parameters live (DESIGN.md §11): flush the
    /// current stack to a frame boundary, tell the receiver with a
    /// `RECONFIG` frame, wait for its delivered-watermark ack, and rebuild
    /// the sender stack from the new parameters — all without tearing the
    /// raw connections down. Returns `false` if the link already runs
    /// `params` (no wire traffic).
    ///
    /// On any wire failure mid-exchange the two ends may disagree about
    /// the committed format, so the error path funnels into link
    /// recovery: a full re-establishment resynchronizes both sides at the
    /// establishment spec (exactly-once delivery preserved by the resume
    /// replay), and the caller may retry later.
    pub(crate) fn reconfigure_link(
        &self,
        link: &Arc<SharedLink>,
        params: PathParams,
    ) -> io::Result<bool> {
        let seen = link.incarnation();
        match self.try_reconfigure(link, params) {
            Ok(done) => Ok(done),
            // Parameter validation failed before anything hit the wire.
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => Err(e),
            Err(e) => {
                let _ = self.recover_link(link, seen);
                Err(e)
            }
        }
    }

    /// One reconfiguration attempt, entirely under the write gate so no
    /// channel writer can interleave a message between the old and new
    /// stack formats.
    fn try_reconfigure(&self, link: &Arc<SharedLink>, params: PathParams) -> io::Result<bool> {
        let mut io = link.io();
        if params == link.path_params() {
            return Ok(false);
        }
        // Stripes can only be spread over connections establishment
        // actually dialed; parked spares beyond `active` are reusable.
        if !params.valid_for(io.links.len()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "reconfig {} invalid for {} raw link(s)",
                    params.describe(),
                    io.links.len()
                ),
            ));
        }
        if !io.healthy() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "link down before reconfig",
            ));
        }
        // The epoch is burned even if this attempt dies: the receiver can
        // always order frames, and recovery never rewinds it.
        let epoch = link.next_path_epoch();
        io.write_reconfig(epoch, params)?;
        // Block for the receiver's ack (raw on stream 0, reverse — the
        // resume-reply pattern): it proves the receiver consumed every
        // old-format byte and swapped. Poll readability first so a link
        // that dies right here cannot park us forever.
        let mut l0 = io.links[0].clone();
        let ready = wait_until(RESUME_REPLY_TIMEOUT, Duration::from_millis(10), || {
            link_readable(&l0)
        });
        if !ready {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no reconfig ack from receiver",
            ));
        }
        let frame = read_frame(&mut l0)?;
        let mut fr = FrameReader::new(&frame);
        let got = fr.u64()?;
        if got != epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reconfig ack epoch {got}, expected {epoch}"),
            ));
        }
        // The ack carries the receiver's delivered watermarks — the
        // exactly-once handshake. Everything we wrote happened-before the
        // RECONFIG frame, so these cover every sent message; advancing
        // the ack cells prunes the resend buffers for free.
        let chans = link.replay_order();
        let n = fr.u64()? as usize;
        for _ in 0..n {
            let ch = fr.u64()?;
            let delivered = fr.u64()?;
            if let Some(c) = chans.iter().find(|c| c.channel == ch) {
                c.acked.advance(delivered);
            }
        }
        // Rebuild the sender stack over the first `stripes` connections;
        // the rest stay parked (healthy() ignores them). GTLS stacks
        // re-handshake deterministically from the per-stream salt.
        let spec_eff = link.spec.clone().with_path(params);
        let ctx = self.ctx();
        let sec = ctx.security(&spec_eff);
        let raw: Vec<RawLink> = io.links[..params.stripes as usize].to_vec();
        let (writer, pool, term) =
            build_sender_parts(raw, &spec_eff, self.inner.cpu.clone(), sec.as_ref())?;
        io.writer = writer;
        io.pool = pool;
        io.term = term;
        io.active = params.stripes as usize;
        link.set_path_params(params);
        Ok(true)
    }

    /// Start the per-link control daemon, if the environment opted in:
    /// sample transport telemetry every `interval`, feed the deterministic
    /// [`PathController`], and apply whatever it decides. Exits when the
    /// last channel detaches from the link.
    fn spawn_path_controller(&self, link: &Arc<SharedLink>) {
        let Some(cfg) = self.inner.env.path_control else {
            return;
        };
        let node = self.clone();
        let weak = Arc::downgrade(link);
        let sched = self.ctx().sched;
        sched.spawn_daemon("path-ctl", move || {
            let mut ctl: Option<PathController> = None;
            loop {
                gridsim_net::ctx::sleep(cfg.interval);
                let Some(link) = weak.upgrade() else { break };
                if link.channel_count() == 0 {
                    break;
                }
                let now = gridsim_net::ctx::now().as_nanos() / 1_000;
                let sample = link.sample_stats(now);
                let ctl = ctl.get_or_insert_with(|| PathController::new(link.path_params(), cfg));
                // A recovery may have reset the live parameters behind our
                // back; resync before and after deciding.
                ctl.applied(link.path_params());
                if let Some(p) = ctl.on_sample(sample) {
                    let _ = node.reconfigure_link(&link, p);
                    ctl.applied(link.path_params());
                }
            }
        });
    }

    // ------------------------------------------------- the data path

    /// Send one message payload on a channel. The fast path writes under
    /// the link's FIFO gate; a detected failure (before or during the
    /// write) funnels into the link's single-flight recovery, whose replay
    /// covers this message — the `wire_seq` check notices that and skips
    /// the duplicate write.
    pub(crate) fn send_on(&self, c: &SendConnection, payload: &bytes::Bytes) -> io::Result<()> {
        let seq = c.chan.retain(payload);
        loop {
            let seen = c.link.incarnation();
            let (wrote, contended) = {
                let mut io = c.link.io();
                if c.chan.wire_seq() > seq {
                    // A recovery replayed this message while we waited on
                    // the gate.
                    return Ok(());
                }
                let ok = io.healthy() && io.write_msg(c.chan.channel, payload).is_ok();
                (ok, c.link.io_contended())
            };
            if wrote {
                c.chan.advance_wire(seq + 1);
                if contended {
                    // Releasing the gate wakes the front waiter, but the
                    // wake is an event: without yielding here, the next
                    // send_on call re-locks the free gate first and a
                    // queued OPEN starves behind the entire data run.
                    gridsim_net::ctx::yield_now();
                }
                return Ok(());
            }
            self.recover_link(&c.link, seen)?;
        }
    }

    /// Flush a channel, announce its clean close, and wait for the bytes
    /// to leave the host; then detach it (tearing the link down if it was
    /// the last channel) and unregister its ack watermark.
    pub(crate) fn close_channel(&self, c: &SendConnection) -> io::Result<()> {
        let r = self.graceful_close(&c.link, &c.chan);
        if c.link.attached(c.chan.channel) {
            c.link.detach(c.chan.channel);
        }
        self.gc_link_if_empty(&c.link.key, &c.link);
        self.release_channel(c.chan.channel);
        r
    }

    /// Abrupt release (port dropped without `close()`): detach without
    /// touching the wire — exactly what dropping a dedicated stack did
    /// before the session layer.
    pub(crate) fn drop_channel(&self, c: &SendConnection) {
        if c.link.attached(c.chan.channel) {
            c.link.detach(c.chan.channel);
        }
        self.gc_link_if_empty(&c.link.key, &c.link);
        self.release_channel(c.chan.channel);
    }

    fn graceful_close(&self, link: &Arc<SharedLink>, chan: &Arc<Channel>) -> io::Result<()> {
        loop {
            if !link.attached(chan.channel) {
                return Ok(());
            }
            let seen = link.incarnation();
            let r = {
                let mut io = link.io();
                let res = io.writer.flush();
                let res = res.and_then(|()| {
                    if io.mux {
                        io.write_close(chan.channel)
                    } else {
                        Ok(())
                    }
                });
                // Settle under the gate: no concurrent writer can queue
                // fresh bytes between our CLOSE and the drain check.
                res.and_then(|()| io.settle())
            };
            match r {
                Ok(()) => return Ok(()),
                Err(_) => self.recover_link(link, seen)?,
            }
        }
    }

    fn gc_link_if_empty(&self, key: &LinkKey, link: &Arc<SharedLink>) {
        if link.channel_count() == 0 {
            self.inner.links.remove(key, link);
        }
    }

    // ------------------------------------------------- link recovery

    /// Funnel a failed write into the link's single-flight recovery:
    /// exactly one task re-establishes and replays all channels; everyone
    /// else parks until that round completes (or learns a completed round
    /// already covered them).
    pub(crate) fn recover_link(&self, link: &Arc<SharedLink>, seen: u64) -> io::Result<()> {
        match link.begin_recovery(seen) {
            RecoveryRole::Recovered => Ok(()),
            RecoveryRole::Failed(e) => Err(e),
            RecoveryRole::Recoverer => {
                let result = self.do_recover_link(link);
                match &result {
                    Ok(()) => self.inner.links.note_recovery(),
                    // A dead link must not be handed to new claimants;
                    // attached channels keep their state and retry
                    // recovery on their next send.
                    Err(_) => self.inner.links.remove(&link.key, link),
                }
                link.finish_recovery(&result);
                result
            }
        }
    }

    /// Re-establish a failed shared link in place: back off, walk the
    /// decision tree again (possibly landing on a *different* method —
    /// e.g. spliced before the failure, routed after), learn the
    /// receiver's delivered count for EVERY attached channel, and replay
    /// the retained gaps. Exactly-once holds because the receiver drops
    /// anything below its per-channel watermark.
    fn do_recover_link(&self, link: &Arc<SharedLink>) -> io::Result<()> {
        // Whatever killed the data link may also have silently killed the
        // idle relay service link (an abort whose RST the outage
        // swallowed). Probe it now so incoming service traffic — the
        // receiver's CACKs in particular — finds us registered again.
        if let Some(relay) = &self.inner.relay {
            relay.nudge();
        }
        let peer_desc = link
            .replay_order()
            .first()
            .map(|c| c.peer_port.clone())
            .unwrap_or_default();
        let mut delay = RECOVER_BASE;
        let mut last_err: io::Error = io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("data link to '{peer_desc}' lost"),
        );
        for _ in 0..RECOVER_ATTEMPTS {
            gridsim_net::ctx::sleep(delay);
            delay = (delay * 2).min(RECOVER_DELAY_CAP);
            let chans = link.replay_order();
            let Some(anchor) = chans.first() else {
                // Every channel detached while we backed off: nothing to
                // recover. The link stays dead and gets GC'd by the last
                // detach.
                return Ok(());
            };
            // Re-anchor on the surviving head channel (the original anchor
            // may have closed); establishment dials ITS receive port.
            link.set_anchor(anchor.channel);
            let gen = link.next_gen();
            let extras: Vec<(u64, String)> = chans[1..]
                .iter()
                .map(|c| (c.channel, c.peer_port.clone()))
                .collect();
            let plan = ResumePlan { gen, extras };
            let (rec, peer_profile, _) =
                match self.nat_gated(|| self.inner.ns.lookup_port(&anchor.peer_port)) {
                    Ok(x) => x,
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                };
            let methods = choose_methods(&self.inner.profile, &peer_profile, LinkPurpose::Data);
            for method in methods {
                let built = self
                    .try_method(
                        method,
                        &rec,
                        &peer_profile,
                        &link.spec,
                        anchor.channel,
                        Some(&plan),
                    )
                    .and_then(|(raw, total)| {
                        self.build_link_io(raw, total, &link.spec, Some(chans.len()))
                    });
                let (io, deliveries) = match built {
                    Ok(x) => x,
                    Err(e) => {
                        if std::env::var("NETGRID_DEBUG").is_ok() {
                            eprintln!("[netgrid] recovery method {method} failed: {e}");
                        }
                        last_err = e;
                        continue;
                    }
                };
                // Validate every channel's replay BEFORE swapping the
                // stack in: a resume-bounds violation (evicted gap,
                // impossible watermark) is fatal and must not be retried.
                let mut replays = Vec::with_capacity(chans.len());
                let mut fatal = Ok(());
                for (c, &e) in chans.iter().zip(&deliveries) {
                    match c.prepare_replay(e) {
                        Ok(r) => replays.push(r),
                        Err(err) => {
                            fatal = Err(err);
                            break;
                        }
                    }
                }
                fatal?;
                let active = io.active as u16;
                match self.swap_and_replay(link, io, &chans, &replays) {
                    Ok(()) => {
                        link.set_method(method);
                        // Live path parameters reset to the establishment
                        // spec (with the stripe count the method actually
                        // delivered — routed links carry one stream). The
                        // epoch is NOT rewound; the path controller
                        // re-issues its tuning from scratch.
                        link.set_path_params(PathParams {
                            stripes: active.max(1),
                            ..link.spec.path
                        });
                        link.bump_incarnation();
                        return Ok(());
                    }
                    Err(e) => {
                        // Replay write failure: the fresh link died too.
                        // Messages stay retained; fall into another attempt.
                        last_err = e;
                    }
                }
            }
        }
        Err(io::Error::new(
            last_err.kind(),
            format!(
                "could not recover link to '{peer_desc}' after {RECOVER_ATTEMPTS} attempts: {last_err}"
            ),
        ))
    }

    /// Swap the fresh stack in and replay every channel's retained gap
    /// through it, all under the write gate so concurrent senders observe
    /// either the dead stack or the fully replayed one.
    fn swap_and_replay(
        &self,
        link: &Arc<SharedLink>,
        mut new_io: LinkIo,
        chans: &[Arc<Channel>],
        replays: &[Vec<bytes::Bytes>],
    ) -> io::Result<()> {
        // A resumed link re-negotiates framing by channel count: back to
        // the legacy byte format when one channel remains, tagged when
        // several do (the resume preamble already told the receiver).
        new_io.mux = chans.len() > 1;
        let mut io = link.io();
        *io = new_io;
        for (c, msgs) in chans.iter().zip(replays) {
            for p in msgs {
                io.write_msg(c.channel, p)?;
            }
        }
        Ok(())
    }

    /// Attempt one establishment method; returns the raw links in stream
    /// order plus the effective stream count.
    fn try_method(
        &self,
        method: EstablishMethod,
        rec: &PortRecord,
        peer_profile: &ConnectivityProfile,
        spec: &StackSpec,
        channel: u64,
        resume: Option<&ResumePlan>,
    ) -> io::Result<(Vec<RawLink>, u16)> {
        match method {
            EstablishMethod::ClientServer => {
                let listener = rec.listener.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::AddrNotAvailable, "port has no listener")
                })?;
                let mut links = Vec::with_capacity(spec.streams() as usize);
                for idx in 0..spec.streams() {
                    // Storm hardening: transient ephemeral-port exhaustion
                    // (AddrInUse) retries outside the NAT gate, so a
                    // symmetric-NAT node never sleeps while holding it.
                    let s = crate::establish::factory::retry_addr_in_use(|| {
                        self.nat_gated(|| self.inner.host.connect(listener))
                    })?;
                    self.send_preamble(&s, channel, idx, spec.streams(), resume)?;
                    links.push(RawLink::Tcp(s));
                }
                Ok((links, spec.streams()))
            }
            EstablishMethod::Proxy => {
                let listener = rec.listener.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::AddrNotAvailable, "port has no listener")
                })?;
                // Use the target's site proxy to reach inward; fall back to
                // our own proxy for a strictly firewalled initiator.
                let proxy = if !peer_profile.accepts_inbound() {
                    peer_profile.socks_proxy
                } else {
                    self.inner.profile.socks_proxy
                }
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::AddrNotAvailable, "no SOCKS proxy available")
                })?;
                let mut links = Vec::with_capacity(spec.streams() as usize);
                for idx in 0..spec.streams() {
                    let s = self.nat_gated(|| socks_connect(&self.inner.host, proxy, listener))?;
                    self.send_preamble(&s, channel, idx, spec.streams(), resume)?;
                    links.push(RawLink::Tcp(s));
                }
                Ok((links, spec.streams()))
            }
            EstablishMethod::Splicing => {
                // NAT port prediction races with any concurrent outbound
                // traffic on the same site (each connection consumes
                // mappings); like real NAT-traversal systems, retry with a
                // staggered backoff before falling back down the tree.
                let mut last = None;
                for attempt in 0..3u32 {
                    if attempt > 0 {
                        let stagger =
                            Duration::from_millis(200 * attempt as u64 + (channel % 7) * 50);
                        gridsim_net::ctx::sleep(stagger);
                    }
                    match self.splice_initiate(rec, spec, channel, resume) {
                        Ok(links) => return Ok((links, spec.streams())),
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.expect("at least one attempt"))
            }
            EstablishMethod::Routed => {
                let relay = self.relay()?;
                let wire_channel = match resume {
                    Some(p) if !p.extras.is_empty() => channel | RESUME_FLAG | MUX_FLAG,
                    Some(_) => channel | RESUME_FLAG,
                    None => channel,
                };
                let stream = relay.open_stream(rec.owner, &rec.name, wire_channel)?;
                if let Some(p) = resume {
                    // The generation (and mux channel list) travels as the
                    // first stream frame (the OPEN frame layout stays
                    // untouched).
                    let mut w = stream.clone();
                    let mut fw = FrameWriter::new().u64(p.gen);
                    if !p.extras.is_empty() {
                        fw = fw.u64(p.extras.len() as u64);
                        for (ch, name) in &p.extras {
                            fw = fw.u64(*ch).str(name);
                        }
                    }
                    fw.send(&mut w)?;
                }
                Ok((vec![RawLink::Routed(stream)], 1))
            }
        }
    }

    fn relay(&self) -> io::Result<&RelayClient> {
        self.inner.relay.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no relay configured (needed for brokering/routing)",
            )
        })
    }

    fn send_preamble(
        &self,
        s: &TcpStream,
        channel: u64,
        idx: u16,
        total: u16,
        resume: Option<&ResumePlan>,
    ) -> io::Result<()> {
        s.set_nodelay(true)?;
        let mut w = s.clone();
        let wire_channel = match resume {
            Some(p) if !p.extras.is_empty() => channel | RESUME_FLAG | MUX_FLAG,
            Some(_) => channel | RESUME_FLAG,
            None => channel,
        };
        let mut fw = FrameWriter::new()
            .u64(wire_channel)
            .u64(idx as u64)
            .u64(total as u64);
        if let Some(p) = resume {
            fw = fw.u64(p.gen);
            if !p.extras.is_empty() {
                fw = fw.u64(p.extras.len() as u64);
                for (ch, name) in &p.extras {
                    fw = fw.u64(*ch).str(name);
                }
            }
        }
        fw.send(&mut w)
    }

    /// TCP configuration used for spliced connects: bounded retries so a
    /// failed prediction falls through to a retry or the next method in a
    /// few seconds.
    fn splice_cfg(&self) -> TcpConfig {
        TcpConfig {
            syn_retries: 2,
            ..self.inner.host.tcp_config()
        }
    }

    /// Compute the public endpoints peers must dial for our upcoming
    /// connects from `local_ports` (paper §6's NAT port prediction).
    fn predict_endpoints(&self, local_ports: &[u16]) -> io::Result<Vec<SockAddr>> {
        match self.inner.profile.nat {
            None => Ok(local_ports
                .iter()
                .map(|&p| SockAddr::new(self.inner.host.ip(), p))
                .collect()),
            Some(NatClass::Cone) => {
                // One probe per port: the cone mapping persists for any
                // destination.
                local_ports
                    .iter()
                    .map(|&p| self.inner.ns.probe_observed(Some(p), false))
                    .collect()
            }
            Some(NatClass::SymmetricPredictable) => {
                // One probe from an ephemeral port reveals the allocation
                // counter; our next `n` outbound connections (in order)
                // will take the following ports.
                let observed = self.inner.ns.probe_observed(None, false)?;
                Ok((0..local_ports.len() as u16)
                    .map(|i| SockAddr::new(observed.ip, observed.port + 1 + i))
                    .collect())
            }
            Some(NatClass::SymmetricRandom) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unpredictable NAT: splicing not possible",
            )),
        }
    }

    /// Initiator side of brokered TCP splicing (paper Fig. 7), three
    /// messages over the service link:
    ///
    /// 1. `SPLICE_REQ {channel, port, total}` — the responder predicts its
    ///    public endpoints (holding its NAT gate if NATted) and replies.
    /// 2. The initiator predicts its own endpoints and **emits its SYNs
    ///    before releasing its NAT gate** — the predict→SYN window is
    ///    therefore race-free on this side.
    /// 3. `SPLICE_GO {channel, initiator endpoints}` — the responder
    ///    connects (and releases its gate).
    fn splice_initiate(
        &self,
        rec: &PortRecord,
        spec: &StackSpec,
        channel: u64,
        resume: Option<&ResumePlan>,
    ) -> io::Result<Vec<RawLink>> {
        let relay = self.relay()?.clone();
        let total = spec.streams();
        // During recovery the responder may have died mid-negotiation;
        // bound the brokering round-trips so the tree can fall through.
        let svc_timeout = resume.map(|_| RECOVER_SVC_TIMEOUT);
        // 1. Request: responder allocates + predicts.
        let req = FrameWriter::new()
            .u8(svc::SPLICE_REQ)
            .u64(channel)
            .str(&rec.name)
            .u64(total as u64)
            .into_bytes();
        let rsp = relay.service_request_timeout(rec.owner, &req, svc_timeout)?;
        let mut r = FrameReader::new(&rsp);
        if r.u8()? != 1 {
            let msg = r.str().unwrap_or_default();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("splice refused: {msg}"),
            ));
        }
        let n = r.u64()? as usize;
        if n != total as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "endpoint count mismatch",
            ));
        }
        let peer_eps: Vec<SockAddr> = (0..n).map(|_| r.addr()).collect::<io::Result<_>>()?;

        // 2. Predict and emit SYNs under the NAT gate.
        let natted = self.nat_serializes();
        if natted {
            self.inner.nat_gate.acquire();
        }
        let launched = (|| -> io::Result<(Vec<TcpStream>, Vec<SockAddr>)> {
            let my_ports = self.alloc_splice_ports(total);
            let my_eps = self.predict_endpoints(&my_ports)?;
            let cfg = self.splice_cfg();
            let mut streams = Vec::with_capacity(total as usize);
            for (&lp, &ep) in my_ports.iter().zip(&peer_eps) {
                streams.push(self.inner.host.connect_start(
                    ep,
                    ConnectOpts {
                        local_port: Some(lp),
                        cfg: Some(cfg),
                    },
                )?);
            }
            Ok((streams, my_eps))
        })();
        if natted {
            self.inner.nat_gate.release();
        }
        let (streams, my_eps) = match launched {
            Ok(x) => x,
            Err(e) => {
                // Tell the responder to abandon the negotiation (it may be
                // holding its NAT gate).
                let abort = FrameWriter::new()
                    .u8(svc::SPLICE_ABORT)
                    .u64(channel)
                    .into_bytes();
                let _ = relay.service_request(rec.owner, &abort);
                return Err(e);
            }
        };

        // 3. GO: the responder connects towards us.
        let mut go = FrameWriter::new()
            .u8(svc::SPLICE_GO)
            .u64(channel)
            .u64(my_eps.len() as u64);
        for ep in &my_eps {
            go = go.addr(*ep);
        }
        let go_rsp = relay.service_request_timeout(rec.owner, &go.into_bytes(), svc_timeout)?;
        let mut r = FrameReader::new(&go_rsp);
        if r.u8()? != 1 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "splice GO refused",
            ));
        }

        // Wait for establishment, then send the stream preambles.
        let mut links = Vec::with_capacity(streams.len());
        for (idx, stream) in streams.into_iter().enumerate() {
            stream.wait_established()?;
            self.send_preamble(&stream, channel, idx as u16, total, resume)?;
            links.push(RawLink::Tcp(stream));
        }
        Ok(links)
    }

    // -------------------------------------------- responder-side splice

    /// Handle `SPLICE_REQ`: allocate ports, predict endpoints (taking the
    /// NAT gate, held until GO/ABORT), reply with the predictions.
    fn handle_splice_request(&self, _from: GridId, r: &mut FrameReader<'_>) -> io::Result<Vec<u8>> {
        let channel = r.u64()?;
        let port_name = r.str()?;
        let total = r.u64()? as u16;
        if total == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad splice request",
            ));
        }
        let port = self
            .inner
            .ports
            .lock()
            .get(&port_name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unknown receive port"))?;
        if !self.inner.profile.splice_capable() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "this side cannot splice",
            ));
        }
        // A duplicate REQ for the same channel is a retry whose response
        // was lost to a relay failover: drop the stale negotiation (and
        // its gate hold) instead of deadlocking on a second acquire.
        if let Some(p) = self.inner.pending_splices.lock().remove(&channel) {
            if p.holds_gate {
                self.inner.nat_gate.release();
            }
        }
        let natted = self.nat_serializes();
        if natted {
            self.inner.nat_gate.acquire();
        }
        let predicted = (|| -> io::Result<(Vec<u16>, Vec<SockAddr>)> {
            let my_ports = self.alloc_splice_ports(total);
            let eps = self.predict_endpoints(&my_ports)?;
            Ok((my_ports, eps))
        })();
        let (my_ports, my_endpoints) = match predicted {
            Ok(x) => x,
            Err(e) => {
                if natted {
                    self.inner.nat_gate.release();
                }
                return Err(e);
            }
        };
        self.inner.pending_splices.lock().insert(
            channel,
            PendingSplice {
                port,
                my_ports,
                total,
                holds_gate: natted,
            },
        );
        let mut w = FrameWriter::new().u8(1).u64(my_endpoints.len() as u64);
        for ep in &my_endpoints {
            w = w.addr(*ep);
        }
        Ok(w.into_bytes())
    }

    /// Handle `SPLICE_GO`: emit our SYNs towards the initiator's endpoints
    /// (mappings land on the predicted ports because the gate was held
    /// since REQ), then release the gate.
    fn handle_splice_go(&self, _from: GridId, r: &mut FrameReader<'_>) -> io::Result<Vec<u8>> {
        let channel = r.u64()?;
        let n = r.u64()? as usize;
        let peer_eps: Vec<SockAddr> = (0..n).map(|_| r.addr()).collect::<io::Result<_>>()?;
        let pending = self
            .inner
            .pending_splices
            .lock()
            .remove(&channel)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no pending splice"))?;
        let result = (|| -> io::Result<()> {
            if peer_eps.len() != pending.total as usize || peer_eps.len() != pending.my_ports.len()
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "endpoint count mismatch",
                ));
            }
            let cfg = self.splice_cfg();
            let sched = self.inner.env.net.sched().clone();
            for (i, (&lp, &ep)) in pending.my_ports.iter().zip(&peer_eps).enumerate() {
                let stream = self.inner.host.connect_start(
                    ep,
                    ConnectOpts {
                        local_port: Some(lp),
                        cfg: Some(cfg),
                    },
                )?;
                let node = self.clone();
                let port = Arc::clone(&pending.port);
                sched.spawn_daemon(format!("splice-accept-{i}"), move || {
                    if stream.wait_established().is_err() {
                        return;
                    }
                    let _ = node.handle_spliced_stream(&port, stream);
                });
            }
            Ok(())
        })();
        if pending.holds_gate {
            self.inner.nat_gate.release();
        }
        result.map(|()| FrameWriter::new().u8(1).into_bytes())
    }

    /// Handle `CACK{channel, delivered}` from a receive port: advance the
    /// matching send channel's cumulative-ack watermark. Unknown channels
    /// (already closed) still ack — the frame is advisory and a stale CACK
    /// needs no error.
    fn handle_cack(&self, r: &mut FrameReader<'_>) -> io::Result<Vec<u8>> {
        let channel = r.u64()?;
        let delivered = r.u64()?;
        if let Some(cell) = self.inner.ack_cells.lock().get(&channel) {
            cell.advance(delivered);
        }
        Ok(FrameWriter::new().u8(1).into_bytes())
    }

    /// Handle `SPLICE_ABORT`: drop the pending negotiation and free the gate.
    fn handle_splice_abort(&self, r: &mut FrameReader<'_>) -> io::Result<Vec<u8>> {
        let channel = r.u64()?;
        if let Some(p) = self.inner.pending_splices.lock().remove(&channel) {
            if p.holds_gate {
                self.inner.nat_gate.release();
            }
        }
        Ok(FrameWriter::new().u8(1).into_bytes())
    }

    fn handle_spliced_stream(
        &self,
        port: &Arc<ReceivePortInner>,
        stream: TcpStream,
    ) -> io::Result<()> {
        // Same as an accepted connection: read the initiator's preamble.
        self.handle_incoming_tcp(port, stream)
    }
}

/// Decode the resume preamble's extra-channel list: `n`, then `n` pairs of
/// `(channel id, receive-port name)`.
fn read_mux_extras(fr: &mut FrameReader<'_>) -> io::Result<Vec<(u64, String)>> {
    let n = fr.u64()?;
    if n > MAX_MUX_CHANNELS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "mux channel list too long",
        ));
    }
    let mut extras = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let ch = fr.u64()?;
        let name = fr.str()?;
        extras.push((ch, name));
    }
    Ok(extras)
}

/// Service-message opcodes (carried in SVC_REQ payloads).
pub(crate) mod svc {
    pub const SPLICE_REQ: u8 = 1;
    pub const SPLICE_GO: u8 = 2;
    pub const SPLICE_ABORT: u8 = 3;
    /// Receiver-driven cumulative ack: `CACK {channel, delivered}`.
    pub const CACK: u8 = 4;
}

/// The relay delegate: routes service requests and routed-link opens into
/// the node runtime.
struct NodeDelegate {
    inner: Weak<NodeInner>,
}

impl NodeDelegate {
    fn node(&self) -> Option<GridNode> {
        self.inner.upgrade().map(|inner| GridNode { inner })
    }
}

impl RelayDelegate for NodeDelegate {
    fn on_service_request(&self, from: GridId, payload: &[u8]) -> Vec<u8> {
        let Some(node) = self.node() else {
            return FrameWriter::new().u8(0).str("node gone").into_bytes();
        };
        let mut r = FrameReader::new(payload);
        let result = match r.u8() {
            Ok(svc::SPLICE_REQ) => node.handle_splice_request(from, &mut r),
            Ok(svc::SPLICE_GO) => node.handle_splice_go(from, &mut r),
            Ok(svc::SPLICE_ABORT) => node.handle_splice_abort(&mut r),
            Ok(svc::CACK) => node.handle_cack(&mut r),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown service request",
            )),
        };
        match result {
            Ok(rsp) => rsp,
            Err(e) => FrameWriter::new().u8(0).str(&e.to_string()).into_bytes(),
        }
    }

    fn on_open(
        &self,
        _from: GridId,
        port_name: &str,
        channel: u64,
        stream: RoutedStream,
    ) -> Result<(), String> {
        let Some(node) = self.node() else {
            return Err("node gone".into());
        };
        let port = node
            .inner
            .ports
            .lock()
            .get(port_name)
            .cloned()
            .ok_or_else(|| format!("unknown receive port '{port_name}'"))?;
        if channel & RESUME_FLAG != 0 {
            // Resumed routed link: the generation (and mux channel list)
            // is the first stream frame.
            let mut r = stream.clone();
            let frame = read_frame(&mut r).map_err(|e| e.to_string())?;
            let mut fr = FrameReader::new(&frame);
            let gen = fr.u64().map_err(|e| e.to_string())?;
            let extras = if channel & MUX_FLAG != 0 {
                read_mux_extras(&mut fr).map_err(|e| e.to_string())?
            } else {
                Vec::new()
            };
            port.add_resume_link(
                &node.ctx(),
                channel & !(RESUME_FLAG | MUX_FLAG),
                0,
                1,
                ResumeMeta { gen, extras },
                RawLink::Routed(stream),
            )
            .map_err(|e| e.to_string())
        } else {
            port.add_raw_link(&node.ctx(), channel, 0, 1, RawLink::Routed(stream))
                .map_err(|e| e.to_string())
        }
    }
}

/// Does the link have bytes (or a pending error/EOF) to read right now?
fn link_readable(l: &RawLink) -> bool {
    match l {
        RawLink::Tcp(s) => s.readable(),
        RawLink::Routed(s) => s.readable(),
    }
}

/// Block the calling task until `cond` holds or `timeout` elapses; polls at
/// the given interval. A pragmatic helper for tests and examples.
pub fn wait_until(timeout: Duration, poll: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = gridsim_net::ctx::now() + timeout;
    while gridsim_net::ctx::now() < deadline {
        if cond() {
            return true;
        }
        gridsim_net::ctx::sleep(poll);
    }
    cond()
}
