//! The Ibis Name Service (paper §5): the registry that lets nodes bootstrap
//! connectivity — it stores node records and receive-port locations, and
//! doubles as a STUN-like "observed address" service for NAT port
//! prediction (the paper's splicing through "known and predictable port
//! translation" needs exactly this).
//!
//! Protocol: one length-prefixed request frame per connection-turn;
//! clients open a fresh connection per request (requests are rare —
//! registration and lookups — and this keeps firewalled clients simple:
//! every request is an ordinary outbound client/server connection).
//!
//! The server listens on two consecutive ports; probing both from the same
//! local port distinguishes cone NAT (same external port observed twice)
//! from symmetric NAT (two different mappings) — the STUN-style behaviour
//! discovery the paper lists under future work ("automated selection of the
//! proper communication methods").

use gridsim_net::SockAddr;
use gridsim_tcp::{ConnectOpts, SimHost, TcpConfig, TcpStream};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self};
use std::sync::Arc;

use crate::establish::factory::BootstrapSocketFactory;
use crate::profile::{ConnectivityProfile, NatClass};
use crate::wire::{read_frame, FrameReader, FrameWriter};

/// A registered node's identity.
pub type GridId = u64;

/// Request opcodes.
mod op {
    pub const REGISTER: u8 = 1;
    pub const REGISTER_PORT: u8 = 2;
    pub const LOOKUP_PORT: u8 = 3;
    pub const LOOKUP_NODE: u8 = 4;
    pub const OBSERVED: u8 = 5;
    pub const LIST_PORTS: u8 = 6;
    pub const UNREGISTER_PORT: u8 = 7;
    /// Reachability probe: "try to open a TCP connection to this address
    /// and tell me whether it worked" — lets a node discover whether it is
    /// behind a firewall that blocks unsolicited inbound connections.
    pub const CONNECT_BACK: u8 = 8;
}

/// What the name service knows about a node.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    pub id: GridId,
    pub name: String,
    pub profile: ConnectivityProfile,
    /// The node's ordered relay list (primary first), published only by
    /// nodes configured with failover relays. Peers and operators can read
    /// which relays a node will converge on after a failover.
    pub relays: Vec<SockAddr>,
}

/// What the name service knows about a receive port.
#[derive(Clone, Debug)]
pub struct PortRecord {
    pub owner: GridId,
    pub name: String,
    /// The owner's data listener (site-local address; directly reachable
    /// only if the owner accepts inbound, via its site proxy otherwise).
    pub listener: Option<SockAddr>,
    /// Opaque encoded stack spec (drivers::StackSpec).
    pub stack: Vec<u8>,
}

#[derive(Default)]
struct NsState {
    next_id: GridId,
    nodes: HashMap<GridId, NodeRecord>,
    by_name: HashMap<String, GridId>,
    ports: HashMap<String, PortRecord>,
}

/// Spawn the name service on `host`, listening on `port` and `port + 1`.
pub fn spawn_name_service(host: &SimHost, port: u16) -> io::Result<()> {
    let state = Arc::new(Mutex::new(NsState {
        next_id: 1,
        ..Default::default()
    }));
    for p in [port, port + 1] {
        let listener = host.listen(p)?;
        let state = Arc::clone(&state);
        let host2 = host.clone();
        let sched = host.net().sched().clone();
        let sched2 = sched.clone();
        sched.spawn_daemon(format!("ns-accept-{p}"), move || loop {
            let Ok(conn) = listener.accept() else { break };
            let state = Arc::clone(&state);
            let host3 = host2.clone();
            sched2.spawn_daemon("ns-conn", move || {
                let _ = serve_conn(&state, &host3, conn);
            });
        });
    }
    Ok(())
}

fn serve_conn(state: &Mutex<NsState>, host: &SimHost, conn: TcpStream) -> io::Result<()> {
    let mut stream = conn.clone();
    loop {
        let req = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return Ok(()), // client closed
        };
        let mut r = FrameReader::new(&req);
        let reply = match r.u8()? {
            op::REGISTER => {
                let name = r.str()?;
                let profile = ConnectivityProfile::decode(&mut r)?;
                // Optional trailing field (older clients omit it): the
                // node's ordered relay list for failover.
                let relays = if r.is_empty() { Vec::new() } else { r.addrs()? };
                let mut st = state.lock();
                let id = st.next_id;
                st.next_id += 1;
                st.nodes.insert(
                    id,
                    NodeRecord {
                        id,
                        name: name.clone(),
                        profile,
                        relays,
                    },
                );
                st.by_name.insert(name, id);
                FrameWriter::new().u8(1).u64(id)
            }
            op::REGISTER_PORT => {
                let owner = r.u64()?;
                let name = r.str()?;
                let listener = r.opt_addr()?;
                let stack = r.bytes()?.to_vec();
                let mut st = state.lock();
                if st.ports.contains_key(&name) {
                    FrameWriter::new().u8(0).str("port name already registered")
                } else {
                    st.ports.insert(
                        name.clone(),
                        PortRecord {
                            owner,
                            name,
                            listener,
                            stack,
                        },
                    );
                    FrameWriter::new().u8(1)
                }
            }
            op::UNREGISTER_PORT => {
                let name = r.str()?;
                state.lock().ports.remove(&name);
                FrameWriter::new().u8(1)
            }
            op::LOOKUP_PORT => {
                let name = r.str()?;
                let st = state.lock();
                match st.ports.get(&name) {
                    Some(p) => {
                        let owner = st.nodes.get(&p.owner).cloned();
                        match owner {
                            Some(n) => {
                                let w = FrameWriter::new()
                                    .u8(1)
                                    .u64(p.owner)
                                    .str(&n.name)
                                    .opt_addr(p.listener)
                                    .bytes(&p.stack);
                                n.profile.encode(w)
                            }
                            None => FrameWriter::new().u8(0).str("owner vanished"),
                        }
                    }
                    None => FrameWriter::new().u8(0).str("unknown port"),
                }
            }
            op::LOOKUP_NODE => {
                let id = r.u64()?;
                let st = state.lock();
                match st.nodes.get(&id) {
                    Some(n) => {
                        let w = FrameWriter::new().u8(1).str(&n.name);
                        let w = n.profile.encode(w);
                        // Trailing relay list, present only when the node
                        // registered one (keeps old replies byte-identical).
                        if n.relays.is_empty() {
                            w
                        } else {
                            w.addrs(&n.relays)
                        }
                    }
                    None => FrameWriter::new().u8(0).str("unknown node"),
                }
            }
            op::OBSERVED => {
                // STUN-like: tell the caller how we see it (post-NAT).
                FrameWriter::new().u8(1).addr(conn.peer_addr())
            }
            op::CONNECT_BACK => {
                let target = r.addr()?;
                // Short-fused attempt: one SYN retry is enough to separate
                // "reachable" from "firewalled" (refused counts as
                // reachable at the network layer — a host answered).
                let cfg = TcpConfig {
                    syn_retries: 1,
                    ..host.tcp_config()
                };
                let outcome = host.connect_opts(
                    target,
                    ConnectOpts {
                        local_port: None,
                        cfg: Some(cfg),
                    },
                );
                let reachable = match outcome {
                    Ok(_) => true,
                    Err(e) => e.kind() == io::ErrorKind::ConnectionRefused,
                };
                FrameWriter::new().u8(1).u8(reachable as u8)
            }
            op::LIST_PORTS => {
                let st = state.lock();
                let mut w = FrameWriter::new().u8(1).u64(st.ports.len() as u64);
                for name in st.ports.keys() {
                    w = w.str(name);
                }
                w
            }
            _ => FrameWriter::new().u8(0).str("unknown opcode"),
        };
        reply.send(&mut stream)?;
    }
}

/// Client handle: opens one connection per request, built by the
/// bootstrap socket factory (paper Fig. 8).
#[derive(Clone)]
pub struct NsClient {
    host: SimHost,
    ns_addr: SockAddr,
    factory: BootstrapSocketFactory,
    /// Dial through this SOCKS proxy (for strictly firewalled sites).
    via_proxy: Option<SockAddr>,
}

impl NsClient {
    pub fn new(host: SimHost, ns_addr: SockAddr, via_proxy: Option<SockAddr>) -> NsClient {
        let factory = BootstrapSocketFactory::new(host.clone(), via_proxy);
        NsClient {
            host,
            ns_addr,
            factory,
            via_proxy,
        }
    }

    pub fn addr(&self) -> SockAddr {
        self.ns_addr
    }

    fn dial(&self, addr: SockAddr) -> io::Result<TcpStream> {
        self.factory.connect(addr)
    }

    fn request(&self, frame: FrameWriter) -> io::Result<Vec<u8>> {
        let mut stream = self.dial(self.ns_addr)?;
        frame.send(&mut stream)?;
        read_frame(&mut stream)
    }

    fn request_ok(&self, frame: FrameWriter) -> io::Result<Vec<u8>> {
        let rsp = self.request(frame)?;
        let mut r = FrameReader::new(&rsp);
        if r.u8()? == 1 {
            Ok(rsp)
        } else {
            let msg = r.str().unwrap_or_else(|_| "request failed".into());
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("name service: {msg}"),
            ))
        }
    }

    /// Register this node; returns its grid-wide id. `relays` is the
    /// node's ordered relay list (primary first) — pass an empty slice to
    /// omit the field, which keeps the frame identical to older clients'
    /// (single-relay deployments don't publish).
    pub fn register(
        &self,
        name: &str,
        profile: &ConnectivityProfile,
        relays: &[SockAddr],
    ) -> io::Result<GridId> {
        let mut w = profile.encode(FrameWriter::new().u8(op::REGISTER).str(name));
        if !relays.is_empty() {
            w = w.addrs(relays);
        }
        let rsp = self.request_ok(w)?;
        let mut r = FrameReader::new(&rsp);
        r.u8()?;
        r.u64()
    }

    /// Register a receive port.
    pub fn register_port(
        &self,
        owner: GridId,
        name: &str,
        listener: Option<SockAddr>,
        stack: &[u8],
    ) -> io::Result<()> {
        self.request_ok(
            FrameWriter::new()
                .u8(op::REGISTER_PORT)
                .u64(owner)
                .str(name)
                .opt_addr(listener)
                .bytes(stack),
        )?;
        Ok(())
    }

    pub fn unregister_port(&self, name: &str) -> io::Result<()> {
        self.request_ok(FrameWriter::new().u8(op::UNREGISTER_PORT).str(name))?;
        Ok(())
    }

    /// Look up a receive port: returns (record, owner profile).
    pub fn lookup_port(&self, name: &str) -> io::Result<(PortRecord, ConnectivityProfile, String)> {
        let rsp = self.request_ok(FrameWriter::new().u8(op::LOOKUP_PORT).str(name))?;
        let mut r = FrameReader::new(&rsp);
        r.u8()?;
        let owner = r.u64()?;
        let owner_name = r.str()?;
        let listener = r.opt_addr()?;
        let stack = r.bytes()?.to_vec();
        let profile = ConnectivityProfile::decode(&mut r)?;
        Ok((
            PortRecord {
                owner,
                name: name.to_string(),
                listener,
                stack,
            },
            profile,
            owner_name,
        ))
    }

    /// Look up a node by id.
    pub fn lookup_node(&self, id: GridId) -> io::Result<NodeRecord> {
        let rsp = self.request_ok(FrameWriter::new().u8(op::LOOKUP_NODE).u64(id))?;
        let mut r = FrameReader::new(&rsp);
        r.u8()?;
        let name = r.str()?;
        let profile = ConnectivityProfile::decode(&mut r)?;
        let relays = if r.is_empty() { Vec::new() } else { r.addrs()? };
        Ok(NodeRecord {
            id,
            name,
            profile,
            relays,
        })
    }

    /// All registered port names (diagnostics).
    pub fn list_ports(&self) -> io::Result<Vec<String>> {
        let rsp = self.request_ok(FrameWriter::new().u8(op::LIST_PORTS))?;
        let mut r = FrameReader::new(&rsp);
        r.u8()?;
        let n = r.u64()? as usize;
        (0..n).map(|_| r.str()).collect()
    }

    /// Ask the name service to attempt a connection back to `target` and
    /// report whether it succeeded — the firewall-detection probe.
    pub fn connect_back(&self, target: SockAddr) -> io::Result<bool> {
        let rsp = self.request_ok(FrameWriter::new().u8(op::CONNECT_BACK).addr(target))?;
        let mut r = FrameReader::new(&rsp);
        r.u8()?;
        Ok(r.u8()? != 0)
    }

    /// Probe the observed (post-NAT) address of a connection made from
    /// `local_port`. `second_server` probes the NS's second listener.
    pub fn probe_observed(
        &self,
        local_port: Option<u16>,
        second_server: bool,
    ) -> io::Result<SockAddr> {
        let target = if second_server {
            SockAddr::new(self.ns_addr.ip, self.ns_addr.port + 1)
        } else {
            self.ns_addr
        };
        // Probes are cheap short-lived connections; keep SYN retries low.
        let cfg = TcpConfig {
            syn_retries: 2,
            ..self.host.tcp_config()
        };
        let mut stream = match self.via_proxy {
            Some(_) => {
                // Observed-through-proxy shows the proxy, which is what a
                // strict-firewall site genuinely looks like from outside.
                self.dial(target)?
            }
            None => self.host.connect_opts(
                target,
                ConnectOpts {
                    local_port,
                    cfg: Some(cfg),
                },
            )?,
        };
        FrameWriter::new().u8(op::OBSERVED).send(&mut stream)?;
        let rsp = read_frame(&mut stream)?;
        let mut r = FrameReader::new(&rsp);
        r.u8()?;
        r.addr()
    }

    /// Fully automated connectivity-profile discovery (paper §8 future
    /// work: "the automated selection of the proper communication methods
    /// for given WAN settings"). Classifies the NAT STUN-style, then uses a
    /// [`NsClient::connect_back`] probe to detect inbound filtering.
    ///
    /// A node configured to reach the outside only through a SOCKS proxy
    /// cannot probe its own position (everything it sees is the proxy); it
    /// is reported as a strict-firewall profile directly.
    pub fn detect_profile(&self) -> io::Result<ConnectivityProfile> {
        use crate::profile::FirewallClass;
        if self.via_proxy.is_some() {
            return Ok(ConnectivityProfile {
                firewall: FirewallClass::Strict,
                nat: None,
                private_addr: self.host.ip().is_private(),
                socks_proxy: self.via_proxy,
            });
        }
        if let Some(class) = self.detect_nat(9950)? {
            return Ok(ConnectivityProfile {
                firewall: FirewallClass::None,
                nat: Some(class),
                private_addr: true,
                socks_proxy: None,
            });
        }
        // No NAT: is unsolicited inbound filtered?
        let probe_port = 9951;
        let listener = self.host.listen(probe_port)?;
        let reachable = self.connect_back(SockAddr::new(self.host.ip(), probe_port))?;
        drop(listener);
        Ok(ConnectivityProfile {
            firewall: if reachable {
                FirewallClass::None
            } else {
                FirewallClass::Stateful
            },
            nat: None,
            private_addr: false,
            socks_proxy: None,
        })
    }

    /// STUN-style NAT behaviour discovery: probe both NS listeners from one
    /// local port and compare the observed mappings.
    pub fn detect_nat(&self, probe_port: u16) -> io::Result<Option<NatClass>> {
        let my_ip = self.host.ip();
        let o1 = self.probe_observed(Some(probe_port), false)?;
        if o1.ip == my_ip {
            return Ok(None); // no translation at all
        }
        let o2 = self.probe_observed(Some(probe_port), true)?;
        if o1.port == o2.port {
            // Same mapping for two destinations: cone.
            return Ok(Some(NatClass::Cone));
        }
        // Symmetric: check whether allocation looks sequential.
        if o2.port == o1.port.wrapping_add(1) {
            Ok(Some(NatClass::SymmetricPredictable))
        } else {
            Ok(Some(NatClass::SymmetricRandom))
        }
    }
}
