//! The session layer (DESIGN.md §8): at most one established, supervised
//! data link per `(peer node, stack equivalence class)`, shared by every
//! channel between that pair.
//!
//! The paper separates ports/channels from the links that carry them
//! (§5, Fig. 6); this module implements that separation for the sender
//! side. A [`LinkTable`] caches established links by [`LinkKey`] with
//! single-flight establishment (concurrent `connect()`s to the same peer
//! run ONE Figure-4 walk and share the result). A [`SharedLink`] owns the
//! assembled driver stack and multiplexes the channels attached to it with
//! channel-tagged frames ([`crate::wire::mux`]); per-channel state —
//! sequence numbers, the resend buffer, the cumulative-ack watermark —
//! lives in [`Channel`] and survives link re-establishment.
//!
//! Concurrency model: the shared stack sits behind a [`SimMutex`], the
//! simulator's FIFO parking lock, so writers from many channels interleave
//! at message granularity and flush fairness is arrival order — no channel
//! can starve another. Channel bookkeeping uses short `parking_lot`
//! sections that are never held across a parking operation.

use bytes::Bytes;
use gridsim_net::{SimMutex, SimMutexGuard, Waker};
use gridzip::varint;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::drivers::{PathParams, RawLink, SenderStack, StackSpec, StripeTerminator};
use crate::establish::{EstablishMethod, LinkKey};
use crate::pool::BlockPool;
use crate::port::{AckCell, ResendOverflow};
use crate::tune::PathStats;
use crate::wire::mux;

// ------------------------------------------------------------- channels

/// Sender-side state of one logical channel riding a [`SharedLink`].
/// Everything here survives link failure: after a re-establishment the
/// retained tail is replayed from `resend` through the fresh stack.
pub(crate) struct Channel {
    /// Globally unique channel id (the sender's grid id in the high bits).
    pub channel: u64,
    /// The receive port this channel is bound to.
    pub peer_port: String,
    /// Receiver-confirmed delivery watermark, advanced by CACK frames.
    pub acked: Arc<AckCell>,
    state: Mutex<ChanState>,
}

struct ChanState {
    /// Messages sent on this channel so far; doubles as the next implicit
    /// sequence number (never on the wire in fault-free runs).
    next_seq: u64,
    /// First sequence number NOT yet written to the current link
    /// incarnation. A recovery replay advances it past everything it
    /// replayed, so a sender that lost the write race simply skips.
    wire_seq: u64,
    /// Retained `(seq, payload)` pairs for post-reconnect replay.
    resend: VecDeque<(u64, Bytes)>,
    resend_bytes: usize,
    /// Resend-buffer byte budget ([`GridEnv::resend_budget`]).
    ///
    /// [`GridEnv::resend_budget`]: crate::node::GridEnv::resend_budget
    budget: usize,
    /// High-water mark of retained bytes, measured before eviction.
    peak: usize,
}

impl Channel {
    pub fn new(channel: u64, peer_port: &str, budget: usize) -> Channel {
        Channel {
            channel,
            peer_port: peer_port.to_string(),
            acked: Arc::new(AckCell::new()),
            state: Mutex::new(ChanState {
                next_seq: 0,
                wire_seq: 0,
                resend: VecDeque::new(),
                resend_bytes: 0,
                budget,
                peak: 0,
            }),
        }
    }

    /// Allocate the next sequence number and retain the payload for
    /// replay, evicting the oldest past the byte budget (the in-flight
    /// message itself is always kept). Everything the receiver has
    /// cumulatively acked is pruned first, so steady-state memory follows
    /// the ack cadence, not the transfer size.
    pub fn retain(&self, payload: &Bytes) -> u64 {
        let acked = self.acked.get();
        let mut st = self.state.lock();
        prune(&mut st, acked);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.resend_bytes += payload.len();
        st.resend.push_back((seq, payload.clone()));
        st.peak = st.peak.max(st.resend_bytes);
        while st.resend_bytes > st.budget && st.resend.len() > 1 {
            if let Some((_, old)) = st.resend.pop_front() {
                st.resend_bytes -= old.len();
            }
        }
        seq
    }

    pub fn wire_seq(&self) -> u64 {
        self.state.lock().wire_seq
    }

    pub fn advance_wire(&self, past: u64) {
        let mut st = self.state.lock();
        st.wire_seq = st.wire_seq.max(past);
    }

    /// `(current_bytes, peak_bytes)` of the resend buffer.
    pub fn resend_stats(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.resend_bytes, st.peak)
    }

    /// Prepare a recovery replay given the receiver's delivered count `e`:
    /// validate the bounds, prune the confirmed prefix, advance `wire_seq`
    /// past everything about to be replayed, and hand back the payloads.
    pub fn prepare_replay(&self, e: u64) -> io::Result<Vec<Bytes>> {
        let mut st = self.state.lock();
        let oldest = st.next_seq - st.resend.len() as u64;
        if e < oldest {
            // The replay gap includes messages the resend buffer evicted
            // past its budget: unrecoverable without violating
            // exactly-once. Typed, so callers can size budgets (or flag a
            // lost receiver) programmatically.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                ResendOverflow {
                    channel: self.channel,
                    acked: e,
                    oldest,
                },
            ));
        }
        if e > st.next_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "cannot resume channel {}: receiver delivered {e}, \
                     but only {} were sent",
                    self.channel, st.next_seq
                ),
            ));
        }
        prune(&mut st, e);
        st.wire_seq = st.next_seq;
        Ok(st.resend.iter().map(|(_, p)| p.clone()).collect())
    }
}

/// Drop retained messages the receiver confirmed (seq < `e`).
fn prune(st: &mut ChanState, e: u64) {
    while st.resend.front().is_some_and(|(s, _)| *s < e) {
        if let Some((_, old)) = st.resend.pop_front() {
            st.resend_bytes -= old.len();
        }
    }
}

// ---------------------------------------------------------- shared links

/// The mutable wire side of a shared link: the assembled sender stack and
/// the raw links under it. Swapped wholesale by a recovery. Guarded by the
/// link's FIFO [`SimMutex`], which doubles as the flush-fairness mechanism:
/// each message is written and flushed under the gate, so concurrent
/// channels interleave at message granularity in arrival order.
pub(crate) struct LinkIo {
    pub writer: SenderStack,
    /// The stack's block pool (aggregation/striping staging buffers).
    pub pool: BlockPool,
    /// Raw links under the stack, cloned for health probes. A live
    /// reconfiguration may leave more links here than the current stack
    /// uses — only the first [`LinkIo::active`] carry data.
    pub links: Vec<RawLink>,
    /// How many of `links` the CURRENT stack stripes over. Health checks
    /// cover only these: a parked spare stripe dying must not trigger a
    /// recovery of a healthy narrower stack.
    pub active: usize,
    /// Segment-terminator handle into the current stack's striped layer
    /// (None when single-stream). [`write_reconfig`](Self::write_reconfig)
    /// uses it to end the stripe segment in-band so the receiver's pump
    /// tasks exit before both ends swap stacks.
    pub term: Option<StripeTerminator>,
    /// Tagged (multiplexed) framing is active. Starts false: a link speaks
    /// the legacy single-channel byte format until a second channel
    /// attaches, so single-channel wire traces stay byte-identical.
    pub mux: bool,
}

impl LinkIo {
    pub fn healthy(&self) -> bool {
        self.links[..self.active].iter().all(RawLink::is_healthy)
    }

    /// Wait until queued bytes left the host and check the links survived.
    pub fn settle(&self) -> io::Result<()> {
        for l in &self.links[..self.active] {
            l.drain()?;
        }
        if self.healthy() {
            Ok(())
        } else {
            Err(io::ErrorKind::ConnectionReset.into())
        }
    }

    /// Frame and flush one message payload down the shared stack. Legacy
    /// format while `mux` is off; tagged [`mux::MSG`] frame after.
    ///
    /// The header is encoded on the stack (no per-frame Vec) and coalesces
    /// with the payload in the stack's aggregation buffer; the sink-call
    /// sequence below it is left untouched, because merging the header and
    /// body submissions would move a segment boundary whenever the flight
    /// is empty (Nagle emits sub-MSS segments then) and change wire traces.
    pub fn write_msg(&mut self, channel: u64, payload: &Bytes) -> io::Result<()> {
        let mut hdr = [0u8; 30];
        let mut n = 0;
        if self.mux {
            n += varint::put_slice(&mut hdr[n..], mux::MSG);
            n += varint::put_slice(&mut hdr[n..], channel);
        }
        n += varint::put_slice(&mut hdr[n..], payload.len() as u64);
        self.writer.write_all(&hdr[..n])?;
        // Refcounted handoff: group communication clones the handle, not
        // the payload, and block-aligned stacks slice it straight onto the
        // wire.
        self.writer.write_block(payload.clone())?;
        self.writer.flush()
    }

    /// Escape into tagged framing (idempotent). Receivers watching the
    /// legacy stream treat the sentinel length as the upgrade signal; a
    /// legacy sender can never emit it.
    fn upgrade_mux(&mut self) -> io::Result<()> {
        if self.mux {
            return Ok(());
        }
        let mut hdr = [0u8; 10];
        let n = varint::put_slice(&mut hdr, mux::SENTINEL);
        self.writer.write_all(&hdr[..n])?;
        self.mux = true;
        Ok(())
    }

    /// Announce a channel joining the link, upgrading to tagged framing
    /// first if this is the second channel. Control frames never sit in a
    /// deferred batch: the trailing flush pushes them (and anything
    /// coalesced ahead of them) to the socket immediately, so channel
    /// setup is not delayed behind large data runs.
    pub fn write_open(&mut self, channel: u64, port_name: &str) -> io::Result<()> {
        self.upgrade_mux()?;
        let mut hdr = [0u8; 30];
        let mut n = 0;
        n += varint::put_slice(&mut hdr[n..], mux::OPEN);
        n += varint::put_slice(&mut hdr[n..], channel);
        n += varint::put_slice(&mut hdr[n..], port_name.len() as u64);
        self.writer.write_all(&hdr[..n])?;
        self.writer.write_all(port_name.as_bytes())?;
        self.writer.flush()
    }

    /// Announce a batch of channels joining the link in ONE control frame
    /// (and one flush): `OPEN_BATCH [n][(channel, name)]*`, reusing the
    /// RESUME preamble's extras encoding. Semantically identical to N
    /// sequential OPENs — the receiver treats every entry idempotently —
    /// but a storm of attaches costs one frame instead of N. Batches of
    /// one fall back to the singular OPEN so existing traces hold.
    pub fn write_open_batch(&mut self, chans: &[(u64, &str)]) -> io::Result<()> {
        if let [(channel, name)] = chans {
            return self.write_open(*channel, name);
        }
        self.upgrade_mux()?;
        let mut hdr = [0u8; 20];
        let mut n = 0;
        n += varint::put_slice(&mut hdr[n..], mux::OPEN_BATCH);
        n += varint::put_slice(&mut hdr[n..], chans.len() as u64);
        self.writer.write_all(&hdr[..n])?;
        for (channel, name) in chans {
            let mut ent = [0u8; 20];
            let mut m = 0;
            m += varint::put_slice(&mut ent[m..], *channel);
            m += varint::put_slice(&mut ent[m..], name.len() as u64);
            self.writer.write_all(&ent[..m])?;
            self.writer.write_all(name.as_bytes())?;
        }
        self.writer.flush()
    }

    /// Announce a live path reconfiguration: flush the current stack to a
    /// block boundary and write `RECONFIG [epoch][stripes][block_size]
    /// [level+1]` through it, then terminate the stripe segment (striped
    /// stacks only). The caller holds the write gate across the whole
    /// exchange (frame → ack → stack swap), so no message bytes can
    /// interleave with the epoch switch. Reconfiguration always upgrades
    /// to tagged framing first — the receiver needs the tag to tell the
    /// frame from a legacy length.
    ///
    /// The terminator matters for exactly-once delivery: a striped
    /// receiver drains each socket from its own eager pump task, and a
    /// pump parked in a socket read survives its stack being dropped — it
    /// would steal the first bytes the NEW stack sends. The in-band
    /// terminator (a zero-length block on every stream, queued after
    /// everything this stack ever wrote) makes each pump exit cleanly, and
    /// the receiver acks only after all of them are gone.
    pub fn write_reconfig(&mut self, epoch: u64, params: PathParams) -> io::Result<()> {
        self.upgrade_mux()?;
        let mut hdr = [0u8; 40];
        let mut n = 0;
        n += varint::put_slice(&mut hdr[n..], mux::RECONFIG);
        n += varint::put_slice(&mut hdr[n..], epoch);
        n += varint::put_slice(&mut hdr[n..], params.stripes as u64);
        n += varint::put_slice(&mut hdr[n..], params.block_size as u64);
        n += varint::put_slice(
            &mut hdr[n..],
            params.compression_level.map(|l| l as u64 + 1).unwrap_or(0),
        );
        self.writer.write_all(&hdr[..n])?;
        self.writer.flush()?;
        if let Some(t) = &self.term {
            t.terminate()?;
        }
        Ok(())
    }

    /// Announce a clean per-channel close (the link itself stays up).
    /// Only meaningful in tagged framing — a legacy link closes by EOF.
    pub fn write_close(&mut self, channel: u64) -> io::Result<()> {
        debug_assert!(self.mux, "CLOSE frames exist only in mux framing");
        let mut hdr = [0u8; 20];
        let mut n = 0;
        n += varint::put_slice(&mut hdr[n..], mux::CLOSE);
        n += varint::put_slice(&mut hdr[n..], channel);
        self.writer.write_all(&hdr[..n])?;
        self.writer.flush()
    }
}

struct ChannelMap {
    map: BTreeMap<u64, Arc<Channel>>,
    /// Set when the last channel detaches: the link is being torn down and
    /// must not accept new attaches (the claimant re-establishes instead).
    closing: bool,
}

struct RecoveryCtl {
    running: bool,
    /// Completed recovery rounds, so waiters can match an outcome to the
    /// round they actually waited on.
    round: u64,
    /// Outcome of the last completed round (kind + message; `io::Error`
    /// is not `Clone`).
    last_err: Option<(io::ErrorKind, String)>,
    waiters: Vec<Waker>,
}

/// What [`SharedLink::begin_recovery`] decided for the caller.
pub(crate) enum RecoveryRole {
    /// The caller must run the recovery and report via `finish_recovery`.
    Recoverer,
    /// Another task's recovery already advanced the incarnation; the
    /// caller's failed write was covered by its replay.
    Recovered,
    /// The recovery the caller waited on failed; the link is down.
    Failed(io::Error),
}

/// One established, supervised data link shared by every channel between
/// one `(peer node, stack spec)` pair.
pub(crate) struct SharedLink {
    pub key: LinkKey,
    /// Effective stack spec (stream-count override applied) — what
    /// recovery re-establishes with.
    pub spec: StackSpec,
    io: SimMutex<LinkIo>,
    channels: Mutex<ChannelMap>,
    /// Channel whose receive port anchors establishment (its listener is
    /// dialed; its port accepts the streams). Re-anchored by recovery if
    /// the original anchor channel has detached.
    anchor: AtomicU64,
    /// Reconnect attempt counter; rides the resume preamble so the
    /// receiver can supersede stale partial assemblies.
    gen: AtomicU64,
    /// Bumped once per completed recovery. Writers snapshot it before a
    /// write; a failed write with an already-advanced incarnation needs no
    /// recovery of its own.
    incarnation: AtomicU64,
    method: Mutex<EstablishMethod>,
    recovery: Mutex<RecoveryCtl>,
    /// Live path state: the epoch of the last committed RECONFIG and the
    /// parameters the current stack was built from. The epoch is monotonic
    /// for the life of the link (recovery resets the *parameters* to the
    /// establishment spec but never rewinds the epoch, so a receiver can
    /// always reject stale frames).
    path: Mutex<(u64, PathParams)>,
    /// Telemetry ring: transport-level samples ([`PathStats`]) pushed by
    /// the session-layer sampler, read by the path controller.
    stats: Mutex<VecDeque<PathStats>>,
}

/// Capacity of the per-link [`PathStats`] ring.
const PATH_STATS_RING: usize = 64;

impl SharedLink {
    pub fn new(
        key: LinkKey,
        spec: StackSpec,
        method: EstablishMethod,
        io: LinkIo,
        anchor_channel: u64,
    ) -> SharedLink {
        let path = spec.path;
        SharedLink {
            key,
            spec,
            io: SimMutex::new(io),
            channels: Mutex::new(ChannelMap {
                map: BTreeMap::new(),
                closing: false,
            }),
            anchor: AtomicU64::new(anchor_channel),
            gen: AtomicU64::new(0),
            incarnation: AtomicU64::new(0),
            method: Mutex::new(method),
            recovery: Mutex::new(RecoveryCtl {
                running: false,
                round: 0,
                last_err: None,
                waiters: Vec::new(),
            }),
            path: Mutex::new((0, path)),
            stats: Mutex::new(VecDeque::with_capacity(PATH_STATS_RING)),
        }
    }

    // ----------------------------------------------- live path state

    /// The parameters the current stack was built from.
    pub fn path_params(&self) -> PathParams {
        self.path.lock().1
    }

    /// Epoch of the last committed RECONFIG (0 = never reconfigured).
    pub fn path_epoch(&self) -> u64 {
        self.path.lock().0
    }

    /// Reserve the next reconfiguration epoch (monotonic, never reused —
    /// an abandoned attempt burns its epoch so the receiver can always
    /// order frames).
    pub fn next_path_epoch(&self) -> u64 {
        let mut p = self.path.lock();
        p.0 += 1;
        p.0
    }

    /// Record a committed reconfiguration.
    pub fn set_path_params(&self, params: PathParams) {
        self.path.lock().1 = params;
    }

    /// Sample the transport counters of the active stripes into the
    /// telemetry ring and return the sample. Takes the write gate briefly
    /// (the raw-link set may be swapped by a concurrent recovery).
    pub fn sample_stats(&self, at_micros: u64) -> PathStats {
        let (agg, stripes) = {
            let io = self.io.lock();
            let mut agg = PathStats {
                at_micros,
                ..PathStats::default()
            };
            let mut srtt_sum = 0u64;
            let mut srtt_n = 0u64;
            for l in &io.links[..io.active] {
                if let Some(cs) = l.conn_stats() {
                    agg.bytes_sent += cs.bytes_sent;
                    agg.rtx_timeouts += cs.rtx_timeouts;
                    agg.fast_retransmits += cs.fast_retransmits;
                    if let Some(srtt) = cs.srtt {
                        srtt_sum += srtt.as_micros() as u64;
                        srtt_n += 1;
                    }
                }
                agg.tx_backlog += l.tx_backlog() as u64;
            }
            agg.srtt_micros = srtt_sum.checked_div(srtt_n).unwrap_or(0);
            (agg, io.active as u16)
        };
        let mut sample = agg;
        sample.stripes = stripes;
        sample.params = self.path_params();
        let mut ring = self.stats.lock();
        if ring.len() == PATH_STATS_RING {
            ring.pop_front();
        }
        ring.push_back(sample);
        sample
    }

    /// Snapshot of the telemetry ring, oldest first.
    pub fn stats_ring(&self) -> Vec<PathStats> {
        self.stats.lock().iter().copied().collect()
    }

    /// Acquire the write gate. FIFO and sim-aware: contending channel
    /// writers and recovery line up in arrival order.
    pub fn io(&self) -> SimMutexGuard<'_, LinkIo> {
        self.io.lock()
    }

    /// Are tasks parked on the write gate? A sender in a tight
    /// send/release loop checks this before dropping its guard and yields
    /// the slice, so a queued OPEN or peer-channel message gets the gate
    /// at message granularity instead of starving behind the whole run.
    pub fn io_contended(&self) -> bool {
        self.io.has_waiters()
    }

    /// Attach a channel; fails when the link is already tearing down.
    pub fn attach(&self, chan: Arc<Channel>) -> bool {
        let mut cm = self.channels.lock();
        if cm.closing {
            return false;
        }
        cm.map.insert(chan.channel, chan);
        true
    }

    /// Detach a channel. The link flips to `closing` the moment it empties,
    /// so a concurrent attach can never resurrect a torn-down link.
    pub fn detach(&self, channel: u64) {
        let mut cm = self.channels.lock();
        cm.map.remove(&channel);
        if cm.map.is_empty() {
            cm.closing = true;
        }
    }

    pub fn attached(&self, channel: u64) -> bool {
        self.channels.lock().map.contains_key(&channel)
    }

    pub fn channel_count(&self) -> usize {
        self.channels.lock().map.len()
    }

    /// Snapshot of the attached channels in deterministic replay order:
    /// the anchor first, the rest by channel id.
    pub fn replay_order(&self) -> Vec<Arc<Channel>> {
        let cm = self.channels.lock();
        let anchor = self.anchor.load(Ordering::Relaxed);
        let mut v: Vec<_> = cm.map.values().cloned().collect();
        v.sort_by_key(|c| (c.channel != anchor, c.channel));
        v
    }

    pub fn set_anchor(&self, channel: u64) {
        self.anchor.store(channel, Ordering::Relaxed);
    }

    pub fn method(&self) -> EstablishMethod {
        *self.method.lock()
    }

    pub fn set_method(&self, m: EstablishMethod) {
        *self.method.lock() = m;
    }

    pub fn next_gen(&self) -> u64 {
        self.gen.fetch_add(1, Ordering::SeqCst) + 1
    }

    pub fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::SeqCst)
    }

    pub fn bump_incarnation(&self) {
        self.incarnation.fetch_add(1, Ordering::SeqCst);
    }

    /// Single-flight recovery entry. `seen` is the incarnation the caller
    /// observed when its write failed: if it already advanced, the replay
    /// of the completed recovery covered the caller's retained message.
    /// Otherwise the first caller becomes the recoverer and everyone else
    /// parks until that round completes.
    pub fn begin_recovery(&self, seen: u64) -> RecoveryRole {
        loop {
            if self.incarnation() != seen {
                return RecoveryRole::Recovered;
            }
            let waited_round = {
                let mut rc = self.recovery.lock();
                if !rc.running {
                    rc.running = true;
                    return RecoveryRole::Recoverer;
                }
                rc.waiters.push(gridsim_net::ctx::waker());
                rc.round
            };
            gridsim_net::ctx::park("link recovery wait");
            let completed = {
                let rc = self.recovery.lock();
                if rc.round > waited_round {
                    Some(rc.last_err.clone())
                } else {
                    None // spurious wake; re-queue
                }
            };
            match completed {
                Some(_) if self.incarnation() != seen => return RecoveryRole::Recovered,
                Some(Some((kind, msg))) => return RecoveryRole::Failed(io::Error::new(kind, msg)),
                // Round completed without error but the incarnation is
                // unchanged — cannot happen (success always bumps it), but
                // looping is the safe answer.
                _ => {}
            }
        }
    }

    /// Report the outcome of a recovery round and wake the waiters.
    pub fn finish_recovery(&self, result: &io::Result<()>) {
        let mut rc = self.recovery.lock();
        rc.running = false;
        rc.round += 1;
        rc.last_err = result.as_ref().err().map(|e| (e.kind(), e.to_string()));
        for w in rc.waiters.drain(..) {
            w.wake();
        }
    }
}

// ------------------------------------------------------------ link table

enum Entry {
    /// A walk is in flight; parked claimants are woken on fulfill/abandon.
    Establishing(Vec<Waker>),
    Ready(Arc<SharedLink>),
}

/// What [`LinkTable::claim`] resolved to.
pub(crate) enum Claim {
    /// An established link exists — attach to it.
    Ready(Arc<SharedLink>),
    /// The caller owns establishment for this key: it must run the walk
    /// and then `fulfill` (or `abandon`) the entry.
    Mine,
}

/// The per-node cache of established data links, keyed by [`LinkKey`],
/// with single-flight establishment: the first claimant of a key runs the
/// Figure-4 walk; concurrent claimants park and attach to the result.
pub(crate) struct LinkTable {
    entries: Mutex<HashMap<LinkKey, Entry>>,
    /// Fresh Figure-4 walks run (establishment dedupe probe).
    walks: AtomicU64,
    /// Completed link-level recoveries (each re-established ONE link and
    /// replayed every attached channel).
    recoveries: AtomicU64,
}

/// Process-wide walk concurrency gauge, across every node in the
/// simulation: single-flight is per-`LinkKey`, so walks to *different*
/// peers run concurrently, and a storm bench proves it by watching the
/// peak here. Purely observational — never read by protocol code.
static WALKS_IN_FLIGHT: AtomicU64 = AtomicU64::new(0);
static WALKS_PEAK: AtomicU64 = AtomicU64::new(0);

/// Reset the process-wide walk concurrency gauge (call between storm
/// scenarios sharing one process).
pub fn walk_gauge_reset() {
    WALKS_IN_FLIGHT.store(0, Ordering::Relaxed);
    WALKS_PEAK.store(0, Ordering::Relaxed);
}

/// Highest number of Figure-4 walks in flight at once since the last
/// [`walk_gauge_reset`], across all nodes.
pub fn walk_gauge_peak() -> u64 {
    WALKS_PEAK.load(Ordering::Relaxed)
}

impl LinkTable {
    pub fn new() -> LinkTable {
        LinkTable {
            entries: Mutex::new(HashMap::new()),
            walks: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    pub fn claim(&self, key: &LinkKey) -> Claim {
        loop {
            {
                let mut e = self.entries.lock();
                match e.get_mut(key) {
                    None => {
                        e.insert(key.clone(), Entry::Establishing(Vec::new()));
                        return Claim::Mine;
                    }
                    Some(Entry::Ready(l)) => return Claim::Ready(Arc::clone(l)),
                    Some(Entry::Establishing(ws)) => ws.push(gridsim_net::ctx::waker()),
                }
            }
            gridsim_net::ctx::park("link establishment wait");
        }
    }

    /// Publish the established link and wake parked claimants.
    pub fn fulfill(&self, key: &LinkKey, link: &Arc<SharedLink>) {
        let prev = self
            .entries
            .lock()
            .insert(key.clone(), Entry::Ready(Arc::clone(link)));
        wake_entry(prev);
    }

    /// Establishment failed: drop the claim so a parked claimant can retry
    /// its own walk (its connect may succeed where ours failed — e.g. the
    /// outage just healed).
    pub fn abandon(&self, key: &LinkKey) {
        let prev = self.entries.lock().remove(key);
        wake_entry(prev);
    }

    /// Identity-guarded removal: GC the entry only if it still maps to
    /// `link` (a replacement established meanwhile must survive).
    pub fn remove(&self, key: &LinkKey, link: &Arc<SharedLink>) {
        let mut e = self.entries.lock();
        if let Some(Entry::Ready(l)) = e.get(key) {
            if Arc::ptr_eq(l, link) {
                e.remove(key);
            }
        }
    }

    /// Established (ready) links right now.
    pub fn ready_count(&self) -> usize {
        self.entries
            .lock()
            .values()
            .filter(|e| matches!(e, Entry::Ready(_)))
            .count()
    }

    pub fn note_walk(&self) {
        self.walks.fetch_add(1, Ordering::Relaxed);
        let now = WALKS_IN_FLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        WALKS_PEAK.fetch_max(now, Ordering::Relaxed);
    }

    /// The walk counted by the matching [`note_walk`] finished (either
    /// way); keeps the concurrency gauge honest.
    pub fn walk_done(&self) {
        // Saturating: a reset mid-walk must not wrap the gauge.
        let _ = WALKS_IN_FLIGHT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    pub fn walks(&self) -> u64 {
        self.walks.load(Ordering::Relaxed)
    }

    pub fn note_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }
}

fn wake_entry(prev: Option<Entry>) {
    if let Some(Entry::Establishing(ws)) = prev {
        for w in ws {
            w.wake();
        }
    }
}
