//! Routed messages through an application-level relay (paper §3.3,
//! Figure 3): every node opens one outbound connection to a relay on a
//! public gateway; the relay forwards frames to their final recipient.
//!
//! The relay connection carries three things, multiplexed:
//!
//! * **service requests/responses** — the brokering channel for connection
//!   establishment (paper Fig. 7: "the data link uses TCP splicing with
//!   brokering through the service link"),
//! * **routed link streams** — last-resort data links ([`RoutedStream`],
//!   a byte stream tunneled frame-by-frame through the relay),
//! * nothing else: the relay never inspects inner payloads.
//!
//! Because every frame crosses the relay host, routed links share its
//! connection capacity — the bottleneck Table 1 warns about and bench E9
//! measures.

use gridsim_net::{SchedHandle, SimMutex, SimQueue, SockAddr};
use gridsim_tcp::{SimHost, TcpStream};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::establish::factory::BootstrapSocketFactory;
use crate::nameservice::GridId;
use crate::wire::{read_frame, FrameReader, FrameWriter};

/// Maximum payload per routed DATA frame.
pub const ROUTED_CHUNK: usize = 8 * 1024;
/// Buffered chunks per routed stream before backpressure.
const STREAM_QUEUE: usize = 32;

mod relay_op {
    pub const HELLO: u8 = 1;
    pub const SEND: u8 = 2;
    pub const RECV: u8 = 3;
    pub const NOPEER: u8 = 4;
    // Sharded/mesh extensions (DESIGN.md §10). A legacy client never sees
    // BUSY/READY unless it talks to a sharded relay; the relay-to-relay ops
    // only ever appear on PEER_HELLO'd connections.
    /// relay → client `{peer}`: `peer`'s receive queue is running hot —
    /// pause DATA towards it until READY.
    pub const BUSY: u8 = 5;
    /// relay → client `{peer}`: `peer`'s queue drained — resume.
    pub const READY: u8 = 6;
    /// relay ↔ relay `{mesh_id}`: first frame both ways on a mesh link.
    pub const PEER_HELLO: u8 = 7;
    /// relay → relay `{node, epoch}`: `node` is registered locally at the
    /// sending relay since `epoch` (sim-time ns; ties break on mesh id).
    pub const ROUTE_ADD: u8 = 8;
    /// relay → relay `{node, epoch}`: that registration ended.
    pub const ROUTE_DEL: u8 = 9;
    /// relay → relay `{node}`: pull — "is `node` registered with you?"
    pub const ROUTE_QUERY: u8 = 10;
    /// relay → relay `{node, found, epoch}`: answer, from local state only.
    pub const ROUTE_RSP: u8 = 11;
    /// relay → relay `{from, to, inner}`: forward one client frame to the
    /// relay currently homing `to`. Never re-forwarded (no mesh loops).
    pub const FWD: u8 = 12;
    /// relay → relay `{from, to, inner}`: a FWD bounced — `to` is not (or
    /// no longer) local at the receiving relay. The origin invalidates its
    /// route entry and re-resolves.
    pub const FWD_FAIL: u8 = 13;
}

mod inner_op {
    pub const SVC_REQ: u8 = 1;
    pub const SVC_RSP: u8 = 2;
    pub const OPEN: u8 = 3;
    pub const OPEN_OK: u8 = 4;
    pub const OPEN_ERR: u8 = 5;
    pub const DATA: u8 = 6;
    pub const FIN: u8 = 7;
}

// ---------------------------------------------------------------- server

/// Spawn the relay server on `host`, listening on `port`.
pub fn spawn_relay(host: &SimHost, port: u16) -> io::Result<()> {
    let listener = host.listen(port)?;
    let conns: Arc<Mutex<HashMap<GridId, SimMutex<TcpStream>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let sched = host.net().sched().clone();
    let sched2 = sched.clone();
    sched.spawn_daemon("relay-accept", move || loop {
        let Ok(conn) = listener.accept() else { break };
        let conns = Arc::clone(&conns);
        sched2.spawn_daemon("relay-conn", move || {
            let _ = serve_relay_conn(&conns, conn);
        });
    });
    Ok(())
}

fn serve_relay_conn(
    conns: &Mutex<HashMap<GridId, SimMutex<TcpStream>>>,
    conn: TcpStream,
) -> io::Result<()> {
    let mut reader = conn.clone();
    // First frame must be HELLO.
    let hello = read_frame(&mut reader)?;
    let mut r = FrameReader::new(&hello);
    if r.u8()? != relay_op::HELLO {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let id = r.u64()?;
    // Register, superseding any stale connection for the same id (a client
    // that reconnected while its old TCP connection lingers). The old
    // serve loop's removal below is identity-guarded, so it cannot
    // unregister this newer connection when it finally exits.
    let me = SimMutex::new(conn.clone());
    conns.lock().insert(id, me.clone());
    let result = (|| -> io::Result<()> {
        loop {
            let frame = read_frame(&mut reader)?;
            let mut r = FrameReader::new(&frame);
            match r.u8()? {
                relay_op::SEND => {
                    let to = r.u64()?;
                    let inner = r.bytes()?;
                    let target = conns.lock().get(&to).cloned();
                    let mut delivered = false;
                    if let Some(t) = target {
                        // Forward; the write blocks under backpressure,
                        // which is exactly the relay-bottleneck behaviour
                        // of the paper's §3.4. A write *error* means the
                        // recipient is dead — that must not tear down the
                        // innocent sender's connection.
                        let mut w = t.lock();
                        if FrameWriter::new()
                            .u8(relay_op::RECV)
                            .u64(id)
                            .bytes(inner)
                            .send(&mut *w)
                            .is_ok()
                        {
                            delivered = true;
                        } else {
                            drop(w);
                            let mut c = conns.lock();
                            if c.get(&to).is_some_and(|cur| cur.ptr_eq(&t)) {
                                c.remove(&to);
                            }
                        }
                    }
                    if !delivered {
                        // Echo the inner frame so the sender can match the
                        // failure to the exact outstanding request.
                        let back = conns.lock().get(&id).cloned();
                        if let Some(b) = back {
                            let mut w = b.lock();
                            FrameWriter::new()
                                .u8(relay_op::NOPEER)
                                .u64(to)
                                .bytes(inner)
                                .send(&mut *w)?;
                        }
                    }
                }
                relay_op::HELLO => {
                    // A re-HELLO probe from a client that suspects its link
                    // after an outage: re-assert the registration, which may
                    // have been evicted towards this same still-live
                    // connection when a forward to it failed transiently.
                    let _ = r.u64()?;
                    conns.lock().insert(id, me.clone());
                }
                _ => return Err(io::ErrorKind::InvalidData.into()),
            }
        }
    })();
    // Unregister only if the table still holds *this* connection; a
    // reconnect may have superseded it while this loop was alive.
    {
        let mut c = conns.lock();
        if c.get(&id).is_some_and(|cur| cur.ptr_eq(&me)) {
            c.remove(&id);
        }
    }
    result
}

// ------------------------------------------------------ sharded mesh relay

/// Bounded frames per recipient shard queue before senders park.
const MESH_QUEUE_FRAMES: usize = 64;
/// Frames parked per unresolved route pull before overflow is bounced.
const ROUTE_WAIT_CAP: usize = 256;
/// A route pull that no peer answers within this window fails its parked
/// frames with NOPEER.
const ROUTE_QUERY_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(500);
/// Mesh peer redial backoff (a peer relay may restart at any time).
const PEER_DIAL_BASE: std::time::Duration = std::time::Duration::from_millis(200);
const PEER_DIAL_CAP: std::time::Duration = std::time::Duration::from_secs(2);
/// Consecutive failed dials before a mesh peer is declared gone for good.
const PEER_DIAL_STRIKES: u32 = 10;

/// Configuration for [`spawn_relay_mesh`]: a sharded relay that may peer
/// with other relays into a routed overlay.
#[derive(Clone, Debug)]
pub struct RelayConfig {
    /// Unique id of this relay in the mesh. Routing-table ties (two relays
    /// claiming the same node at the same sim instant) break towards the
    /// higher `(epoch, mesh_id)`.
    pub mesh_id: u64,
    /// Peer relay addresses this relay dials into the mesh. Route pulls
    /// only ask direct peers, so deployments should form a full mesh: every
    /// relay lists every other.
    pub peers: Vec<SockAddr>,
    /// Capacity of each recipient's shard queue, in frames.
    pub queue_frames: usize,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            mesh_id: 0,
            peers: Vec::new(),
            queue_frames: MESH_QUEUE_FRAMES,
        }
    }
}

/// Spawn a sharded relay on `host:port`, optionally meshed with peers.
///
/// Unlike the legacy [`spawn_relay`] — one serve loop forwarding
/// synchronously, so one slow receiver head-of-line-blocks every sender —
/// each registered recipient gets a bounded queue drained by its own
/// worker task. A sender filling a hot queue is told with a typed BUSY
/// frame (and parks only when the queue is entirely full); DATA frames are
/// never dropped, so per-sender FIFO holds. With `cfg.peers`, relays
/// exchange a node-id → home-relay routing table (pushed on every
/// register/unregister, pulled on miss) and forward frames relay-to-relay,
/// so a client registered at relay A reaches a peer registered at relay B.
///
/// The client-facing wire protocol is a superset of the legacy relay's:
/// legacy clients work unmodified (they just never get BUSY/READY).
pub fn spawn_relay_mesh(host: &SimHost, port: u16, cfg: RelayConfig) -> io::Result<()> {
    let listener = host.listen(port)?;
    let relay = Arc::new(MeshRelay {
        cfg: cfg.clone(),
        sched: host.net().sched().clone(),
        local: Mutex::new(HashMap::new()),
        remote: Mutex::new(HashMap::new()),
        peers: Mutex::new(HashMap::new()),
        waiting: Mutex::new(HashMap::new()),
    });
    let sched = host.net().sched().clone();
    let sched2 = sched.clone();
    let accept_relay = Arc::clone(&relay);
    sched.spawn_daemon("mesh-relay-accept", move || loop {
        let Ok(conn) = listener.accept() else { break };
        let r = Arc::clone(&accept_relay);
        sched2.spawn_daemon("mesh-relay-conn", move || {
            let _ = r.serve_conn(conn);
        });
    });
    for addr in cfg.peers {
        let r = Arc::clone(&relay);
        let h = host.clone();
        host.net()
            .sched()
            .spawn_daemon(format!("mesh-peer-dial-{addr}"), move || {
                r.peer_dial_loop(&h, addr)
            });
    }
    Ok(())
}

/// Who a shard queue delivers to.
#[derive(Clone, Copy)]
enum Owner {
    Client(GridId),
    Peer(u64),
}

/// Where a frame entered this relay, deciding how a failure is reported:
/// local senders get NOPEER on their own connection, peer relays get
/// FWD_FAIL so the origin can re-resolve.
#[derive(Clone, Copy)]
enum Origin {
    Local,
    Peer(u64),
}

enum OutItem {
    /// Pre-encoded relay-to-relay payload (FWD / ROUTE_*). Dropped — after
    /// FWD frames are re-resolved — when the connection dies.
    Frame(Vec<u8>),
    /// A client delivery, kept unencoded so queue leftovers can be
    /// re-routed (or NOPEER'd) when the registration dies or moves.
    Deliver { from: GridId, inner: Vec<u8> },
}

/// One shard: a bounded queue plus the throttle set of senders that were
/// told BUSY and are owed a READY when the queue drains.
#[derive(Clone)]
struct OutQueue {
    q: SimQueue<OutItem>,
    throttled: Arc<Mutex<std::collections::HashSet<GridId>>>,
    /// Set when the registration this queue fed was superseded or died:
    /// the worker stops writing and re-routes what is left.
    dead: Arc<std::sync::atomic::AtomicBool>,
    cap: usize,
}

impl OutQueue {
    fn new(cap: usize) -> OutQueue {
        OutQueue {
            q: SimQueue::bounded(cap.max(2)),
            throttled: Arc::new(Mutex::new(std::collections::HashSet::new())),
            dead: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            cap: cap.max(2),
        }
    }
    /// Identity: is this handle the same shard as `other`? Guards registry
    /// removal the same way the legacy relay's `SimMutex::ptr_eq` does.
    fn same(&self, other: &OutQueue) -> bool {
        Arc::ptr_eq(&self.dead, &other.dead)
    }
    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
        self.q.close();
    }
}

struct LocalEntry {
    q: OutQueue,
    /// Control writer for synchronous BUSY/READY/NOPEER towards this
    /// client, shared (under the lock) with the shard worker's RECVs.
    ctl: SimMutex<TcpStream>,
    /// Registration epoch: sim-time ns when this client HELLO'd, globally
    /// ordered across relays because sim time is.
    epoch: u64,
}

#[derive(Clone, Copy)]
struct RemoteEntry {
    relay: u64,
    epoch: u64,
}

/// Frames parked on an outstanding route pull.
struct PendingRoute {
    frames: Vec<(GridId, Vec<u8>)>,
    /// Peer answers still expected; the entry resolves on the first
    /// positive one, fails when all are negative (or on timeout).
    outstanding: usize,
}

struct MeshRelay {
    cfg: RelayConfig,
    sched: SchedHandle,
    /// Clients registered HERE: the authoritative shard table.
    local: Mutex<HashMap<GridId, LocalEntry>>,
    /// Everyone else: node id → home relay, learned by push and pull.
    remote: Mutex<HashMap<GridId, RemoteEntry>>,
    /// Live mesh links by peer mesh id.
    peers: Mutex<HashMap<u64, OutQueue>>,
    waiting: Mutex<HashMap<GridId, PendingRoute>>,
}

impl MeshRelay {
    fn now_epoch(&self) -> u64 {
        self.sched.now().as_nanos()
    }

    // -------------------------------------------------------- connections

    fn serve_conn(self: &Arc<Self>, conn: TcpStream) -> io::Result<()> {
        let mut reader = conn.clone();
        let first = read_frame(&mut reader)?;
        let mut r = FrameReader::new(&first);
        match r.u8()? {
            relay_op::HELLO => {
                let id = r.u64()?;
                let (q, ctl) = self.register_local(id, conn);
                let res = self.serve_client(id, &q, &ctl, reader);
                self.client_conn_dead(id, &q);
                res
            }
            relay_op::PEER_HELLO => {
                let pid = r.u64()?;
                let mut w = conn.clone();
                FrameWriter::new()
                    .u8(relay_op::PEER_HELLO)
                    .u64(self.cfg.mesh_id)
                    .send(&mut w)?;
                let q = self.register_peer(pid, conn);
                let res = self.serve_peer(pid, reader);
                self.peer_conn_dead(pid, &q);
                res
            }
            _ => Err(io::ErrorKind::InvalidData.into()),
        }
    }

    fn serve_client(
        self: &Arc<Self>,
        id: GridId,
        q: &OutQueue,
        ctl: &SimMutex<TcpStream>,
        mut reader: TcpStream,
    ) -> io::Result<()> {
        loop {
            let frame = read_frame(&mut reader)?;
            let mut r = FrameReader::new(&frame);
            match r.u8()? {
                relay_op::SEND => {
                    let to = r.u64()?;
                    let inner = r.bytes()?.to_vec();
                    self.handle_send(id, to, inner, Origin::Local, false);
                }
                relay_op::HELLO => {
                    // Re-HELLO probe: re-assert the registration (it may
                    // have been evicted towards this still-live connection)
                    // and re-push the route so the mesh heals with it.
                    let _ = r.u64()?;
                    self.assert_local(id, q, ctl);
                }
                _ => return Err(io::ErrorKind::InvalidData.into()),
            }
        }
    }

    fn register_local(
        self: &Arc<Self>,
        id: GridId,
        conn: TcpStream,
    ) -> (OutQueue, SimMutex<TcpStream>) {
        let q = OutQueue::new(self.cfg.queue_frames);
        let ctl = SimMutex::new(conn.clone());
        let me = Arc::clone(self);
        let q2 = q.clone();
        let ctl2 = ctl.clone();
        self.sched
            .spawn_daemon(format!("mesh-shard-{id}"), move || {
                me.out_worker(Owner::Client(id), q2, Some(ctl2), conn)
            });
        self.assert_local(id, &q, &ctl);
        (q, ctl)
    }

    /// (Re-)register `id` as homed here on `q`/`ctl`, superseding any
    /// older registration, and push the route to the mesh.
    fn assert_local(self: &Arc<Self>, id: GridId, q: &OutQueue, ctl: &SimMutex<TcpStream>) {
        let epoch = self.now_epoch();
        let old = self.local.lock().insert(
            id,
            LocalEntry {
                q: q.clone(),
                ctl: ctl.clone(),
                epoch,
            },
        );
        if let Some(old) = old {
            if !old.q.same(q) {
                // The superseded shard's worker re-routes its leftovers —
                // which now resolve to this fresh registration.
                old.q.kill();
            }
        }
        self.remote.lock().remove(&id);
        self.broadcast_route(relay_op::ROUTE_ADD, id, epoch);
        self.flush_waiting(id);
    }

    fn client_conn_dead(self: &Arc<Self>, id: GridId, q: &OutQueue) {
        let removed_epoch = {
            let mut l = self.local.lock();
            if l.get(&id).is_some_and(|e| e.q.same(q)) {
                l.remove(&id).map(|e| e.epoch)
            } else {
                None
            }
        };
        q.kill();
        while let Some(item) = q.q.try_pop() {
            self.reroute_item(&Owner::Client(id), item);
        }
        if let Some(epoch) = removed_epoch {
            self.broadcast_route(relay_op::ROUTE_DEL, id, epoch);
        }
    }

    fn peer_dial_loop(self: &Arc<Self>, host: &SimHost, addr: SockAddr) {
        let mut delay = PEER_DIAL_BASE;
        let mut strikes = 0u32;
        loop {
            if self.peer_dial_once(host, addr).is_ok() {
                delay = PEER_DIAL_BASE;
                strikes = 0;
            } else {
                // A peer dead past the whole backoff ladder is assumed gone
                // for good (its clients fail over to the survivors); giving
                // up also lets a simulation with a crashed relay wind down
                // instead of redialing forever.
                strikes += 1;
                if strikes >= PEER_DIAL_STRIKES {
                    return;
                }
            }
            gridsim_net::ctx::sleep(delay);
            delay = (delay * 2).min(PEER_DIAL_CAP);
        }
    }

    /// Dial one mesh peer, handshake, and serve the link until it dies.
    fn peer_dial_once(self: &Arc<Self>, host: &SimHost, addr: SockAddr) -> io::Result<()> {
        let factory = BootstrapSocketFactory::new(host.clone(), None);
        let conn = factory.connect(addr)?;
        let mut w = conn.clone();
        FrameWriter::new()
            .u8(relay_op::PEER_HELLO)
            .u64(self.cfg.mesh_id)
            .send(&mut w)?;
        let mut reader = conn.clone();
        let hello = read_frame(&mut reader)?;
        let mut r = FrameReader::new(&hello);
        if r.u8()? != relay_op::PEER_HELLO {
            return Err(io::ErrorKind::InvalidData.into());
        }
        let pid = r.u64()?;
        let q = self.register_peer(pid, conn);
        let res = self.serve_peer(pid, reader);
        self.peer_conn_dead(pid, &q);
        res
    }

    fn register_peer(self: &Arc<Self>, pid: u64, conn: TcpStream) -> OutQueue {
        let q = OutQueue::new(self.cfg.queue_frames);
        let me = Arc::clone(self);
        let q2 = q.clone();
        self.sched
            .spawn_daemon(format!("mesh-peer-out-{pid}"), move || {
                me.out_worker(Owner::Peer(pid), q2, None, conn)
            });
        // Both ends dial, so a pair may hold two links; the latest wins for
        // sends, the older one keeps draining until its connection dies.
        self.peers.lock().insert(pid, q.clone());
        // Push our whole local table — the "push on register" half of the
        // protocol, batched so a (re)joining peer converges immediately.
        let table: Vec<(GridId, u64)> = self
            .local
            .lock()
            .iter()
            .map(|(id, e)| (*id, e.epoch))
            .collect();
        for (id, epoch) in table {
            let f = FrameWriter::new()
                .u8(relay_op::ROUTE_ADD)
                .u64(id)
                .u64(epoch)
                .into_bytes();
            let _ = q.q.push(OutItem::Frame(f));
        }
        q
    }

    fn serve_peer(self: &Arc<Self>, pid: u64, mut reader: TcpStream) -> io::Result<()> {
        loop {
            let frame = read_frame(&mut reader)?;
            let mut r = FrameReader::new(&frame);
            match r.u8()? {
                relay_op::ROUTE_ADD => {
                    let node = r.u64()?;
                    let epoch = r.u64()?;
                    self.route_add(pid, node, epoch);
                }
                relay_op::ROUTE_DEL => {
                    let node = r.u64()?;
                    let epoch = r.u64()?;
                    let mut rt = self.remote.lock();
                    if rt
                        .get(&node)
                        .is_some_and(|e| e.relay == pid && e.epoch <= epoch)
                    {
                        rt.remove(&node);
                    }
                }
                relay_op::ROUTE_QUERY => {
                    let node = r.u64()?;
                    let ans = self.local.lock().get(&node).map(|e| e.epoch);
                    let f = FrameWriter::new()
                        .u8(relay_op::ROUTE_RSP)
                        .u64(node)
                        .u8(ans.is_some() as u8)
                        .u64(ans.unwrap_or(0))
                        .into_bytes();
                    self.frame_to_peer(pid, f);
                }
                relay_op::ROUTE_RSP => {
                    let node = r.u64()?;
                    let found = r.u8()? == 1;
                    let epoch = r.u64()?;
                    self.route_rsp(pid, node, found, epoch);
                }
                relay_op::FWD => {
                    let from = r.u64()?;
                    let to = r.u64()?;
                    let inner = r.bytes()?.to_vec();
                    self.handle_send(from, to, inner, Origin::Peer(pid), false);
                }
                relay_op::FWD_FAIL => {
                    let from = r.u64()?;
                    let to = r.u64()?;
                    let inner = r.bytes()?.to_vec();
                    // Our route was stale: drop it and re-resolve — the
                    // node may have re-registered at a third relay (or back
                    // here) between our FWD and the bounce.
                    {
                        let mut rt = self.remote.lock();
                        if rt.get(&to).is_some_and(|e| e.relay == pid) {
                            rt.remove(&to);
                        }
                    }
                    self.handle_send(from, to, inner, Origin::Local, false);
                }
                _ => return Err(io::ErrorKind::InvalidData.into()),
            }
        }
    }

    fn peer_conn_dead(self: &Arc<Self>, pid: u64, q: &OutQueue) {
        {
            let mut p = self.peers.lock();
            if p.get(&pid).is_some_and(|cur| cur.same(q)) {
                p.remove(&pid);
            }
        }
        q.kill();
        while let Some(item) = q.q.try_pop() {
            self.reroute_item(&Owner::Peer(pid), item);
        }
    }

    // ------------------------------------------------------------ routing

    fn route_add(self: &Arc<Self>, pid: u64, node: GridId, epoch: u64) {
        // Conflict with a local registration: the newer (epoch, mesh-id)
        // wins; the loser's shard is killed so nothing more is delivered to
        // the stale registration.
        let evicted = {
            let mut l = self.local.lock();
            match l.get(&node) {
                Some(e) if (epoch, pid) > (e.epoch, self.cfg.mesh_id) => l.remove(&node),
                Some(_) => return, // ours is newer; peer learns from our ADD
                None => None,
            }
        };
        if let Some(e) = evicted {
            e.q.kill();
        }
        {
            let mut rt = self.remote.lock();
            match rt.get(&node) {
                Some(e) if (e.epoch, e.relay) >= (epoch, pid) => {}
                _ => {
                    rt.insert(node, RemoteEntry { relay: pid, epoch });
                }
            }
        }
        self.flush_waiting(node);
    }

    fn route_rsp(self: &Arc<Self>, pid: u64, node: GridId, found: bool, epoch: u64) {
        if found {
            // Only act on a reply we are still waiting for. A reply that
            // straggles in after the query window closed (frames already
            // NOPEER'd) or was never solicited must not install a route:
            // the answering relay's registration may have moved since, and
            // unsolicited learning goes through ADD broadcasts, which
            // carry eviction semantics this path lacks.
            if !self.waiting.lock().contains_key(&node) {
                return;
            }
            {
                let mut rt = self.remote.lock();
                match rt.get(&node) {
                    Some(e) if (e.epoch, e.relay) >= (epoch, pid) => {}
                    _ => {
                        rt.insert(node, RemoteEntry { relay: pid, epoch });
                    }
                }
            }
            self.flush_waiting(node);
        } else {
            let drained = {
                let mut w = self.waiting.lock();
                if let Some(p) = w.get_mut(&node) {
                    p.outstanding = p.outstanding.saturating_sub(1);
                    if p.outstanding == 0 {
                        w.remove(&node)
                    } else {
                        None
                    }
                } else {
                    None
                }
            };
            if let Some(p) = drained {
                for (from, inner) in p.frames {
                    self.undeliverable(from, node, inner, Origin::Local);
                }
            }
        }
    }

    /// Pull: park the frame, ask every peer, resolve on the first positive
    /// answer, NOPEER when all deny or the window closes.
    fn query_route(self: &Arc<Self>, to: GridId, from: GridId, inner: Vec<u8>) {
        let peer_qs: Vec<OutQueue> = self.peers.lock().values().cloned().collect();
        if peer_qs.is_empty() {
            self.undeliverable(from, to, inner, Origin::Local);
            return;
        }
        let fresh = {
            let mut w = self.waiting.lock();
            match w.get_mut(&to) {
                Some(p) => {
                    if p.frames.len() >= ROUTE_WAIT_CAP {
                        drop(w);
                        self.undeliverable(from, to, inner, Origin::Local);
                        return;
                    }
                    p.frames.push((from, inner));
                    false
                }
                None => {
                    w.insert(
                        to,
                        PendingRoute {
                            frames: vec![(from, inner)],
                            outstanding: peer_qs.len(),
                        },
                    );
                    true
                }
            }
        };
        if !fresh {
            return;
        }
        let weak = Arc::downgrade(self);
        self.sched
            .call_at(self.sched.now() + ROUTE_QUERY_TIMEOUT, move || {
                let Some(me) = weak.upgrade() else { return };
                if me.waiting.lock().contains_key(&to) {
                    // Drain in a task: NOPEER writes may park.
                    me.sched.clone().spawn_daemon("route-timeout", move || {
                        let Some(p) = me.waiting.lock().remove(&to) else {
                            return;
                        };
                        for (from, inner) in p.frames {
                            me.undeliverable(from, to, inner, Origin::Local);
                        }
                    });
                }
            });
        let f = FrameWriter::new()
            .u8(relay_op::ROUTE_QUERY)
            .u64(to)
            .into_bytes();
        for pq in peer_qs {
            let _ = pq.q.push(OutItem::Frame(f.clone()));
        }
    }

    /// Re-resolve frames parked for `node` (route learned, or the node
    /// registered here).
    fn flush_waiting(self: &Arc<Self>, node: GridId) {
        let pend = self.waiting.lock().remove(&node);
        if let Some(p) = pend {
            for (from, inner) in p.frames {
                self.handle_send(from, node, inner, Origin::Local, false);
            }
        }
    }

    fn broadcast_route(self: &Arc<Self>, op: u8, node: GridId, epoch: u64) {
        let peer_qs: Vec<OutQueue> = self.peers.lock().values().cloned().collect();
        if peer_qs.is_empty() {
            return;
        }
        let f = FrameWriter::new().u8(op).u64(node).u64(epoch).into_bytes();
        for pq in peer_qs {
            let _ = pq.q.push(OutItem::Frame(f.clone()));
        }
    }

    // --------------------------------------------------------- forwarding

    /// Route one client frame: local shard, known remote relay, or pull.
    /// `retried` bounds the one re-lookup allowed when a registration
    /// churns between lookup and enqueue.
    fn handle_send(
        self: &Arc<Self>,
        from: GridId,
        to: GridId,
        inner: Vec<u8>,
        origin: Origin,
        retried: bool,
    ) {
        let shard = self.local.lock().get(&to).map(|e| e.q.clone());
        if let Some(q) = shard {
            match self.deliver_local(&q, from, to, inner) {
                Ok(()) => return,
                Err(inner) => {
                    // Shard closed under us: the registration died or moved
                    // this instant. Re-resolve once, then give up.
                    if !retried {
                        return self.handle_send(from, to, inner, origin, true);
                    }
                    return self.undeliverable(from, to, inner, origin);
                }
            }
        }
        match origin {
            // A FWD is never re-forwarded — the origin re-resolves — so a
            // stale mesh route can bounce but never loop.
            Origin::Peer(_) => self.undeliverable(from, to, inner, origin),
            Origin::Local => {
                let hop = self.remote.lock().get(&to).map(|e| e.relay);
                if let Some(relay) = hop {
                    let pq = self.peers.lock().get(&relay).cloned();
                    if let Some(pq) = pq {
                        let f = FrameWriter::new()
                            .u8(relay_op::FWD)
                            .u64(from)
                            .u64(to)
                            .bytes(&inner)
                            .into_bytes();
                        if pq.q.push(OutItem::Frame(f)).is_ok() {
                            return;
                        }
                    }
                }
                self.query_route(to, from, inner);
            }
        }
    }

    /// Enqueue into a recipient shard with typed backpressure: BUSY at the
    /// high watermark, a parked push (never a drop — per-sender FIFO) when
    /// full. `Err(inner)` when the shard closed.
    fn deliver_local(
        self: &Arc<Self>,
        q: &OutQueue,
        from: GridId,
        to: GridId,
        inner: Vec<u8>,
    ) -> Result<(), Vec<u8>> {
        let is_data = inner.first() == Some(&inner_op::DATA);
        match q.q.try_push(OutItem::Deliver { from, inner }) {
            Ok(()) => {
                if is_data && q.q.len() >= q.cap - q.cap / 4 {
                    self.throttle(from, to, q);
                }
                Ok(())
            }
            Err(OutItem::Deliver { from, inner }) => {
                if q.q.is_closed() {
                    return Err(inner);
                }
                if is_data {
                    self.throttle(from, to, q);
                }
                match q.q.push(OutItem::Deliver { from, inner }) {
                    Ok(()) => Ok(()),
                    Err(OutItem::Deliver { inner, .. }) => Err(inner),
                    Err(OutItem::Frame(_)) => unreachable!(),
                }
            }
            Err(OutItem::Frame(_)) => unreachable!(),
        }
    }

    /// Tell a (local) sender that `to` is running hot. Senders that came
    /// in over the mesh are backpressured by the FWD path instead.
    fn throttle(self: &Arc<Self>, from: GridId, to: GridId, q: &OutQueue) {
        if q.throttled.lock().insert(from) {
            let f = FrameWriter::new().u8(relay_op::BUSY).u64(to).into_bytes();
            self.ctl_to_local(from, &f);
        }
    }

    /// Failure report for an undeliverable frame, shaped by where it came
    /// from: NOPEER with the echoed inner frame towards a local sender,
    /// FWD_FAIL back to the origin relay otherwise. A non-local sender on
    /// the Local path (a re-routed leftover) has nowhere to report to; the
    /// sender's own timeout/stream-teardown machinery recovers.
    fn undeliverable(self: &Arc<Self>, from: GridId, to: GridId, inner: Vec<u8>, origin: Origin) {
        match origin {
            Origin::Local => {
                let f = FrameWriter::new()
                    .u8(relay_op::NOPEER)
                    .u64(to)
                    .bytes(&inner)
                    .into_bytes();
                self.ctl_to_local(from, &f);
            }
            Origin::Peer(pid) => {
                let f = FrameWriter::new()
                    .u8(relay_op::FWD_FAIL)
                    .u64(from)
                    .u64(to)
                    .bytes(&inner)
                    .into_bytes();
                self.frame_to_peer(pid, f);
            }
        }
    }

    /// Synchronous control write (BUSY/READY/NOPEER) to a local client,
    /// bypassing its shard queue — these must not sit behind the very
    /// backlog they report on.
    fn ctl_to_local(&self, to: GridId, payload: &[u8]) {
        let ctl = self.local.lock().get(&to).map(|e| e.ctl.clone());
        if let Some(ctl) = ctl {
            let mut w = ctl.lock();
            let _ = crate::wire::write_frame(&mut *w, payload);
        }
    }

    fn frame_to_peer(&self, pid: u64, payload: Vec<u8>) {
        let pq = self.peers.lock().get(&pid).cloned();
        if let Some(pq) = pq {
            let _ = pq.q.push(OutItem::Frame(payload));
        }
    }

    /// Shard worker: drain one queue into one connection. On death or
    /// supersession, leftovers are re-resolved through the routing table —
    /// a moved node's frames follow it to its new home relay.
    fn out_worker(
        self: Arc<Self>,
        owner: Owner,
        q: OutQueue,
        ctl: Option<SimMutex<TcpStream>>,
        conn: TcpStream,
    ) {
        let mut plain = conn;
        let mut broken = false;
        while let Some(item) = q.q.pop() {
            if broken || q.dead.load(Ordering::Relaxed) {
                self.reroute_item(&owner, item);
                continue;
            }
            let res = match (&item, &ctl) {
                (OutItem::Frame(payload), _) => crate::wire::write_frame(&mut plain, payload),
                (OutItem::Deliver { from, inner }, Some(ctl)) => {
                    // Shares the control writer so RECVs and control frames
                    // never interleave mid-frame.
                    let mut w = ctl.lock();
                    FrameWriter::new()
                        .u8(relay_op::RECV)
                        .u64(*from)
                        .bytes(inner)
                        .send(&mut *w)
                }
                (OutItem::Deliver { from, inner }, None) => FrameWriter::new()
                    .u8(relay_op::RECV)
                    .u64(*from)
                    .bytes(inner)
                    .send(&mut plain),
            };
            if res.is_err() {
                broken = true;
                match owner {
                    Owner::Client(id) => self.client_conn_dead(id, &q),
                    Owner::Peer(pid) => self.peer_conn_dead(pid, &q),
                }
                self.reroute_item(&owner, item);
                continue;
            }
            if q.q.len() <= q.cap / 4 {
                self.release_throttled(&owner, &q);
            }
        }
        // Whatever ends this shard, parked senders must not stay throttled
        // forever: their next DATA will fail fast through the normal
        // NOPEER/teardown path instead.
        self.release_throttled(&owner, &q);
    }

    fn release_throttled(&self, owner: &Owner, q: &OutQueue) {
        let drained: Vec<GridId> = {
            let mut t = q.throttled.lock();
            if t.is_empty() {
                return;
            }
            t.drain().collect()
        };
        if let Owner::Client(id) = owner {
            let f = FrameWriter::new().u8(relay_op::READY).u64(*id).into_bytes();
            for s in drained {
                self.ctl_to_local(s, &f);
            }
        }
    }

    /// Re-resolve a queue leftover after its connection died or moved.
    fn reroute_item(self: &Arc<Self>, owner: &Owner, item: OutItem) {
        match (owner, item) {
            (Owner::Client(id), OutItem::Deliver { from, inner }) => {
                self.handle_send(from, *id, inner, Origin::Local, false);
            }
            (Owner::Peer(_), OutItem::Frame(payload)) => {
                // Undelivered FWDs chase the recipient through whatever
                // route resolution finds now that this mesh link is gone.
                let mut r = FrameReader::new(&payload);
                if r.u8().ok() == Some(relay_op::FWD) {
                    if let (Ok(from), Ok(to), Ok(inner)) = (r.u64(), r.u64(), r.bytes()) {
                        let inner = inner.to_vec();
                        self.handle_send(from, to, inner, Origin::Local, false);
                    }
                }
            }
            // Control frames towards a dead client, or deliveries riding a
            // peer queue (never queued): nothing to save.
            _ => {}
        }
    }
}

// ---------------------------------------------------------------- client

/// Callbacks from the relay client into the node runtime.
pub trait RelayDelegate: Send + Sync {
    /// Handle a service (brokering) request; return the response payload.
    fn on_service_request(&self, from: GridId, payload: &[u8]) -> Vec<u8>;
    /// An incoming routed link targeting `port_name`.
    fn on_open(
        &self,
        from: GridId,
        port_name: &str,
        channel: u64,
        stream: RoutedStream,
    ) -> Result<(), String>;
}

struct Pending {
    to: GridId,
    result: Option<io::Result<Vec<u8>>>,
    waker: Option<gridsim_net::Waker>,
}

struct OpenWait {
    to: GridId,
    result: Option<Result<(), String>>,
    waker: Option<gridsim_net::Waker>,
}

struct RcInner {
    id: GridId,
    writer: SimMutex<TcpStream>,
    pending: Mutex<HashMap<u64, Pending>>,
    open_waits: Mutex<HashMap<u64, OpenWait>>,
    next_req: AtomicU64,
    next_sid: AtomicU64,
    /// Streams opened by a peer towards us, keyed by (peer, peer's sid).
    inbound: Mutex<HashMap<(GridId, u64), RoutedStream>>,
    /// Streams we opened, keyed by (peer, our sid).
    outbound: Mutex<HashMap<(GridId, u64), RoutedStream>>,
    delegate: Mutex<Option<Arc<dyn RelayDelegate>>>,
    /// Peers a sharded relay flagged BUSY: DATA writes towards them park
    /// here until the READY, with the wakers to release.
    congested: Mutex<HashMap<GridId, Vec<gridsim_net::Waker>>>,
    /// Times this client was BUSY-throttled (observability + bench probe).
    busy_throttles: AtomicU64,
    sched: SchedHandle,
    /// Redial state so the pump can reconnect after a relay restart.
    host: SimHost,
    /// Ordered relay addresses: `[0]` is the primary; the rest are
    /// failover targets once the current relay stays dead past the first
    /// backoff attempt. Every node must share the order, so failed-over
    /// peers converge on the same relay.
    relay_addrs: Vec<SockAddr>,
    /// Index into `relay_addrs` of the relay currently connected.
    current: std::sync::atomic::AtomicUsize,
    via_proxy: Option<SockAddr>,
}

/// Redial schedule after the relay connection drops: attempts and backoff.
const RECONNECT_ATTEMPTS: u32 = 6;
const RECONNECT_BASE: std::time::Duration = std::time::Duration::from_millis(100);
const RECONNECT_CAP: std::time::Duration = std::time::Duration::from_secs(2);
/// Initial-connect sweeps over the relay list before `join` gives up.
const HELLO_SWEEPS: u32 = 3;
const HELLO_SWEEP_BACKOFF: std::time::Duration = std::time::Duration::from_millis(100);
/// In-flight service requests failed by a relay loss are retried for this
/// long (spanning the redial backoff) before the error surfaces.
const SVC_RETRY_WINDOW: std::time::Duration = std::time::Duration::from_secs(6);
const SVC_RETRY_DELAY: std::time::Duration = std::time::Duration::from_millis(250);

/// A node's connection to the relay.
#[derive(Clone)]
pub struct RelayClient {
    inner: Arc<RcInner>,
}

impl RelayClient {
    /// Connect to the relay (optionally through a site SOCKS proxy), say
    /// hello, and start the receive pump.
    pub fn connect(
        host: &SimHost,
        relay_addr: SockAddr,
        via_proxy: Option<SockAddr>,
        id: GridId,
    ) -> io::Result<RelayClient> {
        Self::connect_multi(host, vec![relay_addr], via_proxy, id)
    }

    /// Like [`connect`](Self::connect), with an ordered relay list: the
    /// first reachable relay wins (in order), and the pump's redial fails
    /// over along the same list when the current relay stays dead.
    pub fn connect_multi(
        host: &SimHost,
        relay_addrs: Vec<SockAddr>,
        via_proxy: Option<SockAddr>,
        id: GridId,
    ) -> io::Result<RelayClient> {
        if relay_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no relay addresses",
            ));
        }
        let factory = BootstrapSocketFactory::new(host.clone(), via_proxy);
        let mut dialed = None;
        let mut last_err: io::Error = io::ErrorKind::AddrNotAvailable.into();
        // A login storm can transiently refuse dials (relay accept backlog
        // full) even though the relay is healthy; sweep the ordered list a
        // few times with a short backoff before declaring failure. Local
        // ephemeral-port exhaustion is retried below this, inside
        // `factory.connect`.
        'sweep: for round in 0..HELLO_SWEEPS {
            if round > 0 {
                gridsim_net::ctx::sleep(HELLO_SWEEP_BACKOFF);
            }
            for (idx, &addr) in relay_addrs.iter().enumerate() {
                match Self::dial_hello(&factory, addr, id) {
                    Ok(stream) => {
                        dialed = Some((stream, idx));
                        break 'sweep;
                    }
                    Err(e) => last_err = e,
                }
            }
        }
        let Some((stream, idx)) = dialed else {
            return Err(last_err);
        };
        let inner = Arc::new(RcInner {
            id,
            writer: SimMutex::new(stream.clone()),
            pending: Mutex::new(HashMap::new()),
            open_waits: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
            next_sid: AtomicU64::new(1),
            inbound: Mutex::new(HashMap::new()),
            outbound: Mutex::new(HashMap::new()),
            delegate: Mutex::new(None),
            congested: Mutex::new(HashMap::new()),
            busy_throttles: AtomicU64::new(0),
            sched: host.net().sched().clone(),
            host: host.clone(),
            relay_addrs,
            current: std::sync::atomic::AtomicUsize::new(idx),
            via_proxy,
        });
        let client = RelayClient { inner };
        let pump = client.clone();
        host.net()
            .sched()
            .spawn_daemon(format!("relay-pump-{id}"), move || {
                pump.pump_loop(stream);
            });
        Ok(client)
    }

    /// One connect + HELLO towards a relay address.
    fn dial_hello(
        factory: &BootstrapSocketFactory,
        addr: SockAddr,
        id: GridId,
    ) -> io::Result<TcpStream> {
        let stream = factory.connect(addr)?;
        let mut w = stream.clone();
        FrameWriter::new()
            .u8(relay_op::HELLO)
            .u64(id)
            .send(&mut w)?;
        Ok(stream)
    }

    /// Probe the service link after a suspected outage by re-sending
    /// HELLO on the current connection. Healthy link: the relay re-asserts
    /// the registration (harmless, and it heals a one-sided eviction). Dead
    /// link whose RST was lost in the outage: the write provokes a fresh
    /// reset that wakes the pump into its redial-and-re-HELLO path. Errors
    /// are ignored — the pump owns reconnection.
    pub fn nudge(&self) {
        let mut w = self.inner.writer.lock();
        let _ = FrameWriter::new()
            .u8(relay_op::HELLO)
            .u64(self.inner.id)
            .send(&mut *w);
    }

    /// The relay address this client is currently connected to.
    pub fn current_relay(&self) -> SockAddr {
        let idx = self.inner.current.load(Ordering::Relaxed);
        self.inner.relay_addrs[idx.min(self.inner.relay_addrs.len() - 1)]
    }

    pub fn id(&self) -> GridId {
        self.inner.id
    }

    /// Install the node-runtime callbacks.
    pub fn set_delegate(&self, d: Arc<dyn RelayDelegate>) {
        *self.inner.delegate.lock() = Some(d);
    }

    /// Send one inner frame to `to` through the relay.
    fn send_inner(&self, to: GridId, inner: Vec<u8>) -> io::Result<()> {
        let mut w = self.inner.writer.lock();
        FrameWriter::new()
            .u8(relay_op::SEND)
            .u64(to)
            .bytes(&inner)
            .send(&mut *w)
    }

    /// Blocking service request/response — the brokering channel.
    pub fn service_request(&self, to: GridId, payload: &[u8]) -> io::Result<Vec<u8>> {
        self.service_request_timeout(to, payload, None)
    }

    /// Like [`service_request`](Self::service_request), but with an optional
    /// deadline: if no response (or NOPEER) arrives in time the call fails
    /// with `TimedOut`. Used on recovery paths where the target may have
    /// silently died mid-request; fault-free paths pass `None` so no timer
    /// event is ever scheduled.
    pub fn service_request_timeout(
        &self,
        to: GridId,
        payload: &[u8],
        timeout: Option<std::time::Duration>,
    ) -> io::Result<Vec<u8>> {
        // A request failed by a relay-connection loss (`ConnectionReset`,
        // from `fail_inflight` or a dead writer) is retried while the pump
        // redials — possibly onto a failover relay — until the window
        // closes. Fault-free requests resolve on the first try and never
        // enter the loop; other errors (TimedOut, NotFound, refusals)
        // surface immediately.
        let deadline = gridsim_net::ctx::now() + SVC_RETRY_WINDOW;
        loop {
            match self.try_service_request(to, payload, timeout) {
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        && gridsim_net::ctx::now() < deadline =>
                {
                    gridsim_net::ctx::sleep(SVC_RETRY_DELAY);
                }
                r => return r,
            }
        }
    }

    fn try_service_request(
        &self,
        to: GridId,
        payload: &[u8],
        timeout: Option<std::time::Duration>,
    ) -> io::Result<Vec<u8>> {
        let req_id = self.inner.next_req.fetch_add(1, Ordering::Relaxed);
        self.inner.pending.lock().insert(
            req_id,
            Pending {
                to,
                result: None,
                waker: None,
            },
        );
        if let Some(dt) = timeout {
            let weak = Arc::downgrade(&self.inner);
            self.inner
                .sched
                .call_at(self.inner.sched.now() + dt, move || {
                    let Some(inner) = weak.upgrade() else { return };
                    let mut p = inner.pending.lock();
                    if let Some(slot) = p.get_mut(&req_id) {
                        if slot.result.is_none() {
                            slot.result = Some(Err(io::ErrorKind::TimedOut.into()));
                        }
                        if let Some(w) = slot.waker.take() {
                            w.wake();
                        }
                    }
                });
        }
        let frame = FrameWriter::new()
            .u8(inner_op::SVC_REQ)
            .u64(req_id)
            .bytes(payload)
            .into_bytes();
        if let Err(e) = self.send_inner(to, frame) {
            self.inner.pending.lock().remove(&req_id);
            return Err(e);
        }
        loop {
            {
                let mut p = self.inner.pending.lock();
                // The slot can vanish under us (relay supervision pruning
                // in-flight state across a redial): retryable, not a bug.
                let Some(slot) = p.get_mut(&req_id) else {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "relay request dropped during reconnect",
                    ));
                };
                if let Some(result) = slot.result.take() {
                    p.remove(&req_id);
                    return result;
                }
                slot.waker = Some(gridsim_net::ctx::waker());
            }
            gridsim_net::ctx::park("relay svc rsp");
        }
    }

    /// Open a routed byte stream to `port_name` on node `to`.
    pub fn open_stream(
        &self,
        to: GridId,
        port_name: &str,
        channel: u64,
    ) -> io::Result<RoutedStream> {
        let sid = self.inner.next_sid.fetch_add(1, Ordering::Relaxed);
        let stream = RoutedStream::new(self.clone(), to, sid, true);
        self.inner.outbound.lock().insert((to, sid), stream.clone());
        self.inner.open_waits.lock().insert(
            sid,
            OpenWait {
                to,
                result: None,
                waker: None,
            },
        );
        let frame = FrameWriter::new()
            .u8(inner_op::OPEN)
            .u64(sid)
            .str(port_name)
            .u64(channel)
            .into_bytes();
        self.send_inner(to, frame)?;
        loop {
            {
                let mut ow = self.inner.open_waits.lock();
                // Same supervision race as the service-call wait: a pruned
                // slot means the relay connection churned — retryable.
                let Some(slot) = ow.get_mut(&sid) else {
                    self.inner.outbound.lock().remove(&(to, sid));
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "relay open dropped during reconnect",
                    ));
                };
                if let Some(result) = slot.result.take() {
                    ow.remove(&sid);
                    return match result {
                        Ok(()) => Ok(stream),
                        Err(msg) => {
                            self.inner.outbound.lock().remove(&(to, sid));
                            Err(io::Error::new(io::ErrorKind::ConnectionRefused, msg))
                        }
                    };
                }
                slot.waker = Some(gridsim_net::ctx::waker());
            }
            gridsim_net::ctx::park("relay open");
        }
    }

    /// The receive pump with supervision: dispatch frames until the relay
    /// connection dies, fail everything in flight with a retryable error,
    /// then redial with exponential backoff and re-HELLO. Gives up after
    /// [`RECONNECT_ATTEMPTS`] consecutive failures.
    fn pump_loop(&self, stream: TcpStream) {
        let mut current = stream;
        loop {
            self.pump_one(current);
            // Relay connection gone: fail everything in flight. Callers see
            // `ConnectionReset` — retryable once the pump has redialed.
            self.fail_inflight();
            match self.redial() {
                Some(next) => current = next,
                None => return,
            }
        }
    }

    /// Dispatch frames from one relay connection until it fails.
    fn pump_one(&self, stream: TcpStream) {
        let mut reader = stream;
        while let Ok(frame) = read_frame(&mut reader) {
            if self.dispatch(&frame).is_err() {
                break;
            }
        }
    }

    fn fail_inflight(&self) {
        for slot in self.inner.pending.lock().values_mut() {
            if slot.result.is_none() {
                slot.result = Some(Err(io::ErrorKind::ConnectionReset.into()));
            }
            if let Some(w) = slot.waker.take() {
                w.wake();
            }
        }
        for slot in self.inner.open_waits.lock().values_mut() {
            if slot.result.is_none() {
                slot.result = Some(Err("relay connection lost".into()));
            }
            if let Some(w) = slot.waker.take() {
                w.wake();
            }
        }
        // Congestion gates die with the connection that asserted them.
        for (_, wakers) in self.inner.congested.lock().drain() {
            for w in wakers {
                w.wake();
            }
        }
        // Routed streams are not resumable across a relay restart: close and
        // forget them so post-reconnect traffic cannot hit a stale stream.
        for (_, s) in self.inner.inbound.lock().drain() {
            s.inner.rx.close();
        }
        for (_, s) in self.inner.outbound.lock().drain() {
            s.inner.rx.close();
        }
    }

    /// Reconnect with exponential backoff; on success re-HELLO, swap the
    /// shared writer, and return the fresh stream for the pump. The first
    /// attempt targets only the relay that just died (a restart is the
    /// common case); once it stays dead past that backoff step, each
    /// attempt walks the whole ordered relay list from the current index —
    /// the failover the ordered registration promises.
    fn redial(&self) -> Option<TcpStream> {
        let n = self.inner.relay_addrs.len();
        let mut delay = RECONNECT_BASE;
        for attempt in 0..RECONNECT_ATTEMPTS {
            gridsim_net::ctx::sleep(delay);
            delay = (delay * 2).min(RECONNECT_CAP);
            let factory =
                BootstrapSocketFactory::new(self.inner.host.clone(), self.inner.via_proxy);
            let start = self.inner.current.load(Ordering::Relaxed).min(n - 1);
            let span = if attempt == 0 { 1 } else { n };
            for k in 0..span {
                let idx = (start + k) % n;
                let Ok(stream) =
                    Self::dial_hello(&factory, self.inner.relay_addrs[idx], self.inner.id)
                else {
                    continue;
                };
                self.inner.current.store(idx, Ordering::Relaxed);
                *self.inner.writer.lock() = stream.clone();
                return Some(stream);
            }
        }
        None
    }

    fn dispatch(&self, frame: &[u8]) -> io::Result<()> {
        let mut r = FrameReader::new(frame);
        match r.u8()? {
            relay_op::NOPEER => {
                let to = r.u64()?;
                // The relay echoes the undeliverable inner frame, letting us
                // fail only the request it actually belonged to. Without the
                // echo (or if it does not parse), fall back to failing every
                // outstanding request towards that peer.
                let echoed = r.bytes().ok().filter(|b| !b.is_empty());
                if let Some(inner) = echoed {
                    if self.nopeer_precise(to, inner) {
                        return Ok(());
                    }
                }
                self.nopeer_all(to);
                Ok(())
            }
            relay_op::RECV => {
                let from = r.u64()?;
                let inner = r.bytes()?;
                self.dispatch_inner(from, inner)
            }
            relay_op::BUSY => {
                // A sharded relay says this recipient's queue is hot: gate
                // further DATA towards it until the READY.
                let peer = r.u64()?;
                self.inner.busy_throttles.fetch_add(1, Ordering::Relaxed);
                self.inner.congested.lock().entry(peer).or_default();
                Ok(())
            }
            relay_op::READY => {
                let peer = r.u64()?;
                if let Some(wakers) = self.inner.congested.lock().remove(&peer) {
                    for w in wakers {
                        w.wake();
                    }
                }
                Ok(())
            }
            _ => Err(io::ErrorKind::InvalidData.into()),
        }
    }

    /// Park while the relay holds `to` BUSY. A lost READY cannot strand the
    /// caller: the relay re-READYs when the shard drains or dies, and a
    /// relay-connection loss clears the whole map via `fail_inflight`.
    fn wait_ready(&self, to: GridId) {
        loop {
            {
                let mut c = self.inner.congested.lock();
                match c.get_mut(&to) {
                    None => return,
                    Some(wakers) => wakers.push(gridsim_net::ctx::waker()),
                }
            }
            gridsim_net::ctx::park("relay peer busy");
        }
    }

    /// Times the relay BUSY-throttled this client (monotonic).
    pub fn busy_throttles(&self) -> u64 {
        self.inner.busy_throttles.load(Ordering::Relaxed)
    }

    /// Fail exactly the request the echoed inner frame belonged to. Returns
    /// false when the frame doesn't identify one (caller falls back to
    /// failing everything towards the peer).
    fn nopeer_precise(&self, to: GridId, inner: &[u8]) -> bool {
        let mut r = FrameReader::new(inner);
        let Ok(op) = r.u8() else { return false };
        match op {
            inner_op::SVC_REQ => {
                let Ok(req_id) = r.u64() else { return false };
                let mut p = self.inner.pending.lock();
                let Some(slot) = p.get_mut(&req_id) else {
                    return true; // already resolved; nothing else to fail
                };
                if slot.result.is_none() {
                    slot.result = Some(Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("relay: no peer {to}"),
                    )));
                }
                if let Some(w) = slot.waker.take() {
                    w.wake();
                }
                true
            }
            inner_op::OPEN => {
                let Ok(sid) = r.u64() else { return false };
                let mut ow = self.inner.open_waits.lock();
                let Some(slot) = ow.get_mut(&sid) else {
                    return true;
                };
                if slot.result.is_none() {
                    slot.result = Some(Err(format!("relay: no peer {to}")));
                }
                if let Some(w) = slot.waker.take() {
                    w.wake();
                }
                true
            }
            inner_op::DATA | inner_op::FIN => {
                // The peer behind an open routed stream vanished: close the
                // stream so readers see Eof instead of parking forever.
                let Ok(opener) = r.u8() else { return false };
                let Ok(sid) = r.u64() else { return false };
                let stream = if opener == 1 {
                    self.inner.outbound.lock().remove(&(to, sid))
                } else {
                    self.inner.inbound.lock().remove(&(to, sid))
                };
                if let Some(s) = stream {
                    s.inner.rx.close();
                }
                true
            }
            // SVC_RSP / OPEN_OK / OPEN_ERR bounced: the requester is gone,
            // nothing is waiting on our side.
            inner_op::SVC_RSP | inner_op::OPEN_OK | inner_op::OPEN_ERR => true,
            _ => false,
        }
    }

    /// Legacy behaviour: fail every outstanding request towards `to`.
    fn nopeer_all(&self, to: GridId) {
        let mut p = self.inner.pending.lock();
        for slot in p.values_mut() {
            if slot.to == to && slot.result.is_none() {
                slot.result = Some(Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("relay: no peer {to}"),
                )));
                if let Some(w) = slot.waker.take() {
                    w.wake();
                }
            }
        }
        drop(p);
        let mut ow = self.inner.open_waits.lock();
        for slot in ow.values_mut() {
            if slot.to == to && slot.result.is_none() {
                slot.result = Some(Err(format!("relay: no peer {to}")));
                if let Some(w) = slot.waker.take() {
                    w.wake();
                }
            }
        }
    }

    fn dispatch_inner(&self, from: GridId, inner: &[u8]) -> io::Result<()> {
        let mut r = FrameReader::new(inner);
        match r.u8()? {
            inner_op::SVC_REQ => {
                let req_id = r.u64()?;
                let payload = r.bytes()?.to_vec();
                let delegate = self.inner.delegate.lock().clone();
                let me = self.clone();
                self.inner.sched.spawn_daemon("svc-handler", move || {
                    let rsp = match delegate {
                        Some(d) => (1u8, d.on_service_request(from, &payload)),
                        None => (0u8, b"no service handler".to_vec()),
                    };
                    let frame = FrameWriter::new()
                        .u8(inner_op::SVC_RSP)
                        .u64(req_id)
                        .u8(rsp.0)
                        .bytes(&rsp.1)
                        .into_bytes();
                    let _ = me.send_inner(from, frame);
                });
                Ok(())
            }
            inner_op::SVC_RSP => {
                let req_id = r.u64()?;
                let ok = r.u8()?;
                let payload = r.bytes()?.to_vec();
                let mut p = self.inner.pending.lock();
                if let Some(slot) = p.get_mut(&req_id) {
                    slot.result = Some(if ok == 1 {
                        Ok(payload)
                    } else {
                        Err(io::Error::other(
                            String::from_utf8_lossy(&payload).into_owned(),
                        ))
                    });
                    if let Some(w) = slot.waker.take() {
                        w.wake();
                    }
                }
                Ok(())
            }
            inner_op::OPEN => {
                let sid = r.u64()?;
                let port_name = r.str()?;
                let channel = r.u64()?;
                let stream = RoutedStream::new(self.clone(), from, sid, false);
                let delegate = self.inner.delegate.lock().clone();
                let result = match delegate {
                    Some(d) => {
                        self.inner
                            .inbound
                            .lock()
                            .insert((from, sid), stream.clone());
                        // The delegate may block (stack handshakes); run it
                        // in its own task after acknowledging.
                        let me = self.clone();
                        let st2 = stream;
                        self.inner.sched.spawn_daemon("routed-open", move || {
                            if let Err(msg) = d.on_open(from, &port_name, channel, st2) {
                                let _ = me.send_inner(
                                    from,
                                    FrameWriter::new()
                                        .u8(inner_op::OPEN_ERR)
                                        .u64(sid)
                                        .str(&msg)
                                        .into_bytes(),
                                );
                            }
                        });
                        Ok(())
                    }
                    None => Err("no delegate".to_string()),
                };
                let reply = match result {
                    Ok(()) => FrameWriter::new()
                        .u8(inner_op::OPEN_OK)
                        .u64(sid)
                        .into_bytes(),
                    Err(m) => FrameWriter::new()
                        .u8(inner_op::OPEN_ERR)
                        .u64(sid)
                        .str(&m)
                        .into_bytes(),
                };
                self.send_inner(from, reply)
            }
            inner_op::OPEN_OK => {
                let sid = r.u64()?;
                let mut ow = self.inner.open_waits.lock();
                if let Some(slot) = ow.get_mut(&sid) {
                    slot.result = Some(Ok(()));
                    if let Some(w) = slot.waker.take() {
                        w.wake();
                    }
                }
                Ok(())
            }
            inner_op::OPEN_ERR => {
                let sid = r.u64()?;
                let msg = r.str()?;
                let mut ow = self.inner.open_waits.lock();
                if let Some(slot) = ow.get_mut(&sid) {
                    slot.result = Some(Err(msg));
                    if let Some(w) = slot.waker.take() {
                        w.wake();
                    }
                } else {
                    // Error for an already-open stream: close it.
                    drop(ow);
                    if let Some(s) = self.inner.outbound.lock().get(&(from, sid)) {
                        s.inner.rx.close();
                    }
                }
                Ok(())
            }
            inner_op::DATA => {
                let opened_by_sender = r.u8()? == 1;
                let sid = r.u64()?;
                let chunk = r.bytes()?.to_vec();
                let stream = if opened_by_sender {
                    self.inner.inbound.lock().get(&(from, sid)).cloned()
                } else {
                    self.inner.outbound.lock().get(&(from, sid)).cloned()
                };
                if let Some(s) = stream {
                    // push blocks under backpressure, stalling the pump —
                    // and therefore the relay TCP connection. Crude but
                    // faithful to a single multiplexed relay link.
                    let _ = s.inner.rx.push(chunk);
                } else {
                    // DATA for a stream we no longer know: our state was
                    // reset (relay failover) while the peer kept writing
                    // through its own still-healthy relay. Answer FIN so
                    // its write side closes and its session layer recovers,
                    // instead of silently eating the bytes. FIN for an
                    // unknown stream is a no-op on the peer, so this cannot
                    // loop.
                    let fin = FrameWriter::new()
                        .u8(inner_op::FIN)
                        .u8((!opened_by_sender) as u8)
                        .u64(sid)
                        .into_bytes();
                    let _ = self.send_inner(from, fin);
                }
                Ok(())
            }
            inner_op::FIN => {
                let opened_by_sender = r.u8()? == 1;
                let sid = r.u64()?;
                let stream = if opened_by_sender {
                    self.inner.inbound.lock().remove(&(from, sid))
                } else {
                    self.inner.outbound.lock().remove(&(from, sid))
                };
                if let Some(s) = stream {
                    s.inner.fin_received.store(true, Ordering::Relaxed);
                    s.inner.rx.close();
                }
                Ok(())
            }
            _ => Err(io::ErrorKind::InvalidData.into()),
        }
    }
}

// ---------------------------------------------------------------- stream

struct RsInner {
    client: RelayClient,
    peer: GridId,
    sid: u64,
    /// Did this node open the stream? Determines the direction bit.
    opener: bool,
    rx: SimQueue<Vec<u8>>,
    cursor: Mutex<(Vec<u8>, usize)>,
    fin_sent: Mutex<bool>,
    /// Set only when the peer's FIN arrived — a *graceful* end of stream.
    /// Relay loss and NOPEER teardowns close `rx` without setting it, so
    /// readers can distinguish clean EOF from an abort.
    fin_received: std::sync::atomic::AtomicBool,
}

/// A byte stream tunneled through the relay ("routed messages" link).
/// Cloneable; implements `Read`/`Write` like a socket.
#[derive(Clone)]
pub struct RoutedStream {
    inner: Arc<RsInner>,
}

impl RoutedStream {
    fn new(client: RelayClient, peer: GridId, sid: u64, opener: bool) -> RoutedStream {
        RoutedStream {
            inner: Arc::new(RsInner {
                client,
                peer,
                sid,
                opener,
                rx: SimQueue::bounded(STREAM_QUEUE),
                cursor: Mutex::new((Vec::new(), 0)),
                fin_sent: Mutex::new(false),
                fin_received: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    pub fn peer(&self) -> GridId {
        self.inner.peer
    }

    /// Has the stream been torn down (FIN, relay loss, or peer death)?
    pub fn is_closed(&self) -> bool {
        self.inner.rx.is_closed()
    }

    /// Did the peer end the stream *gracefully* (its FIN arrived)? False
    /// while open and after abortive teardowns (relay loss, dead peer).
    pub fn fin_received(&self) -> bool {
        self.inner.fin_received.load(Ordering::Relaxed)
    }

    /// Wait until every frame written so far has been acknowledged by the
    /// relay host. Surfaces a dead relay connection that silently buffered
    /// writes — without this, a sender could "finish" into a connection
    /// whose abort only fires after its last write.
    pub fn drain(&self) -> io::Result<()> {
        if self.is_closed() {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        self.inner.client.inner.writer.lock().drain()?;
        if self.is_closed() {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        Ok(())
    }

    /// Would a read return without parking (buffered bytes or EOF)?
    pub fn readable(&self) -> bool {
        if !self.inner.rx.is_empty() || self.inner.rx.is_closed() {
            return true;
        }
        let cur = self.inner.cursor.lock();
        cur.1 < cur.0.len()
    }

    /// Signal end of stream to the peer.
    pub fn shutdown_write(&self) -> io::Result<()> {
        let mut sent = self.inner.fin_sent.lock();
        if *sent {
            return Ok(());
        }
        *sent = true;
        let frame = FrameWriter::new()
            .u8(inner_op::FIN)
            .u8(self.inner.opener as u8)
            .u64(self.inner.sid)
            .into_bytes();
        self.inner.client.send_inner(self.inner.peer, frame)
    }
}

impl Read for RoutedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            {
                let mut cur = self.inner.cursor.lock();
                if cur.1 < cur.0.len() {
                    let n = buf.len().min(cur.0.len() - cur.1);
                    buf[..n].copy_from_slice(&cur.0[cur.1..cur.1 + n]);
                    cur.1 += n;
                    return Ok(n);
                }
            }
            // Refill (may park — no lock held).
            match self.inner.rx.pop() {
                Some(chunk) => {
                    let mut cur = self.inner.cursor.lock();
                    *cur = (chunk, 0);
                }
                None => return Ok(0),
            }
        }
    }
}

impl Write for RoutedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for chunk in buf.chunks(ROUTED_CHUNK) {
            // An abortive teardown (relay loss, dead peer, reply-FIN from a
            // failed-over peer) must fail the writer — otherwise a zombie
            // stream keeps pumping DATA into the relay after a redial. A
            // graceful peer FIN keeps the legacy fire-and-forget behaviour.
            if self.inner.rx.is_closed() && !self.fin_received() {
                return Err(io::ErrorKind::ConnectionReset.into());
            }
            self.inner.client.wait_ready(self.inner.peer);
            let frame = FrameWriter::new()
                .u8(inner_op::DATA)
                .u8(self.inner.opener as u8)
                .u64(self.inner.sid)
                .bytes(chunk)
                .into_bytes();
            self.inner.client.send_inner(self.inner.peer, frame)?;
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for RsInner {
    fn drop(&mut self) {
        // Best-effort FIN; ignore failures during teardown.
        let sent = *self.fin_sent.lock();
        if !sent && gridsim_net::ctx::in_task() {
            let frame = FrameWriter::new()
                .u8(inner_op::FIN)
                .u8(self.opener as u8)
                .u64(self.sid)
                .into_bytes();
            let _ = self.client.send_inner(self.peer, frame);
        }
    }
}
