//! Request/reply on top of the IPL's unidirectional message channels —
//! the pattern Ibis uses to build RMI over send/receive ports (paper §5:
//! "Ibis currently implements four application programming models on top
//! of IPL: RMI, ...").
//!
//! A client creates its own private receive port for responses and tells
//! the server its name in every request; the server lazily opens a send
//! port back. Both directions are ordinary netgrid connections, so RPC
//! transparently crosses firewalls and NATs with whatever establishment
//! methods the decision tree picks — the request may even travel a spliced
//! link while the response comes back through a proxy.

use gridsim_net::{SimMutex, SimQueue};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::drivers::StackSpec;
use crate::node::GridNode;
use crate::port::SendPort;

/// A request handler: bytes in, bytes out.
pub type Handler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// Serve `service_name` on this node. Each request runs on its own task,
/// so slow handlers do not stall the port. Returns once the service is
/// registered in the name service.
pub fn serve(node: &GridNode, service_name: &str, handler: Handler) -> io::Result<()> {
    serve_with_spec(node, service_name, StackSpec::plain(), handler)
}

/// Serve with an explicit driver stack for the request direction.
pub fn serve_with_spec(
    node: &GridNode,
    service_name: &str,
    spec: StackSpec,
    handler: Handler,
) -> io::Result<()> {
    let rp = node.create_receive_port(service_name, spec)?;
    let node = node.clone();
    let service = service_name.to_string();
    // Reply send ports are cached: one connection back per client port.
    type ReplyPorts = HashMap<String, Arc<SimMutex<SendPort>>>;
    let replies: Arc<Mutex<ReplyPorts>> = Arc::new(Mutex::new(HashMap::new()));
    let sched = node.host().net().sched().clone();
    let sched2 = sched.clone();
    // `loop + let-else` reads better than while-let here: three fallible
    // bindings with distinct control flow.
    #[allow(clippy::while_let_loop)]
    sched.spawn_daemon(format!("rpc-serve-{service}"), move || loop {
        let Ok(mut m) = rp.receive() else { break };
        let Ok(reply_to) = m.read_str() else { continue };
        let Ok(req_id) = m.read_u64() else { continue };
        let payload = m.remaining().to_vec();
        let handler = Arc::clone(&handler);
        let node = node.clone();
        let replies = Arc::clone(&replies);
        sched2.spawn_daemon("rpc-handler", move || {
            let response = handler(&payload);
            let back = {
                let mut map = replies.lock();
                Arc::clone(
                    map.entry(reply_to.clone())
                        .or_insert_with(|| Arc::new(SimMutex::new(node.create_send_port()))),
                )
            };
            let mut port = back.lock();
            if port.connection_count() == 0 && port.connect(&reply_to).is_err() {
                return; // client gone
            }
            let mut msg = port.message();
            msg.write_u64(req_id);
            msg.write_bytes(&response);
            let _ = msg.finish();
        });
    });
    Ok(())
}

static CLIENT_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A client handle for one remote service. Cloneable; calls from multiple
/// tasks multiplex over the same connection pair and are matched by
/// request id.
#[derive(Clone)]
pub struct RpcClient {
    reply_name: Arc<String>,
    request_port: Arc<SimMutex<SendPort>>,
    pending: Arc<Mutex<HashMap<u64, SimQueue<Vec<u8>>>>>,
    next_id: Arc<AtomicU64>,
}

impl RpcClient {
    /// Connect to `service_name`: establishes the request connection and
    /// publishes a private response port.
    pub fn connect(node: &GridNode, service_name: &str) -> io::Result<RpcClient> {
        let n = CLIENT_COUNTER.fetch_add(1, Ordering::Relaxed);
        let reply_name = format!("rpc-rsp-{}-{n}", node.name());
        let reply_port = node.create_receive_port(&reply_name, StackSpec::plain())?;
        let mut sp = node.create_send_port();
        sp.connect(service_name)?;
        let client = RpcClient {
            reply_name: Arc::new(reply_name.clone()),
            request_port: Arc::new(SimMutex::new(sp)),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_id: Arc::new(AtomicU64::new(1)),
        };
        let pending = Arc::clone(&client.pending);
        #[allow(clippy::while_let_loop)]
        node.host()
            .net()
            .sched()
            .spawn_daemon(format!("rpc-client-{reply_name}"), move || loop {
                let Ok(mut m) = reply_port.receive() else {
                    break;
                };
                let Ok(id) = m.read_u64() else { continue };
                let body = m.remaining().to_vec();
                if let Some(q) = pending.lock().remove(&id) {
                    let _ = q.push(body);
                }
            });
        Ok(client)
    }

    /// Perform one call, blocking (in simulated time) for the response.
    pub fn call(&self, payload: &[u8]) -> io::Result<Vec<u8>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let q: SimQueue<Vec<u8>> = SimQueue::bounded(1);
        self.pending.lock().insert(id, q.clone());
        {
            let mut port = self.request_port.lock();
            let mut m = port.message();
            m.write_str(&self.reply_name);
            m.write_u64(id);
            m.write_bytes(payload);
            m.finish()?;
        }
        q.pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionReset, "rpc client closed"))
    }
}
