//! Per-host CPU model.
//!
//! Filter drivers (compression, encryption) consume host CPU. In 2004 that
//! CPU was the bottleneck that made compression counter-productive above
//! ~6 MB/s of link capacity (paper §6). The simulator's tasks execute in
//! zero simulated time by default, so drivers explicitly charge simulated
//! CPU time here: each host is a FIFO resource — concurrent consumers
//! serialize, which also models the compression/striping CPU contention the
//! paper observed when combining both methods on a fast link.

use gridsim_net::{ctx, NodeId, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// 2004-era throughput rates, in bytes per second of host CPU time.
#[derive(Clone, Copy, Debug)]
pub struct CpuRates {
    /// Compression input rate at level 1 (the paper's crossover implies
    /// ≈5.5 MB/s on their hardware).
    pub compress_l1: f64,
    /// Decompression input rate (compressed bytes; decompression is much
    /// cheaper than compression).
    pub decompress: f64,
    /// Symmetric encryption/decryption rate.
    pub crypt: f64,
    /// Per-byte copy cost of user-space data movement (striping, buffer
    /// aggregation). High, but not free on 2004 JVMs.
    pub copy: f64,
}

impl Default for CpuRates {
    fn default() -> Self {
        CpuRates {
            compress_l1: 5.5e6,
            decompress: 24e6,
            crypt: 30e6,
            copy: 120e6,
        }
    }
}

impl CpuRates {
    /// Compression rate at a given level: deeper match search costs more,
    /// mirroring the paper's observation that only level 1 is worthwhile.
    pub fn compress_at_level(&self, level: u8) -> f64 {
        let factor = match level.clamp(1, 9) {
            1 => 1.0,
            2 => 1.35,
            3 => 1.8,
            4 => 2.5,
            5 => 3.4,
            6 => 4.6,
            7 => 6.5,
            8 => 10.0,
            _ => 16.0,
        };
        self.compress_l1 / factor
    }

    /// An "infinitely fast" CPU: disables the model (for isolating network
    /// effects in tests).
    pub fn unlimited() -> CpuRates {
        CpuRates {
            compress_l1: f64::INFINITY,
            decompress: f64::INFINITY,
            crypt: f64::INFINITY,
            copy: f64::INFINITY,
        }
    }
}

#[derive(Default)]
struct CpuState {
    busy_until: HashMap<NodeId, SimTime>,
    consumed: HashMap<NodeId, Duration>,
}

/// Shared CPU accounting across all hosts of one simulation.
#[derive(Clone, Default)]
pub struct CpuModel {
    state: Arc<Mutex<CpuState>>,
}

impl CpuModel {
    pub fn new() -> CpuModel {
        CpuModel::default()
    }

    /// Charge `bytes` of work at `rate` bytes/sec to `node`'s CPU, blocking
    /// the calling task for queueing + service time. Must be called from a
    /// simulated task.
    pub fn consume(&self, node: NodeId, bytes: usize, rate: f64) {
        if bytes == 0 || !rate.is_finite() {
            return;
        }
        let service = Duration::from_secs_f64(bytes as f64 / rate);
        let now = ctx::now();
        let end = {
            let mut st = self.state.lock();
            let start = st
                .busy_until
                .get(&node)
                .copied()
                .unwrap_or(SimTime::ZERO)
                .max(now);
            let end = start + service;
            st.busy_until.insert(node, end);
            *st.consumed.entry(node).or_default() += service;
            end
        };
        ctx::sleep(end - now);
    }

    /// Total CPU time charged to a node so far (diagnostics/benchmarks).
    pub fn consumed(&self, node: NodeId) -> Duration {
        self.state
            .lock()
            .consumed
            .get(&node)
            .copied()
            .unwrap_or_default()
    }
}

/// A handle binding the model to one host, carried by driver stacks.
#[derive(Clone)]
pub struct HostCpu {
    model: CpuModel,
    node: NodeId,
    pub rates: CpuRates,
}

impl HostCpu {
    pub fn new(model: CpuModel, node: NodeId, rates: CpuRates) -> HostCpu {
        HostCpu { model, node, rates }
    }

    /// Charge `bytes` at `rate` to this host.
    pub fn consume(&self, bytes: usize, rate: f64) {
        self.model.consume(self.node, bytes, rate);
    }

    pub fn consumed(&self) -> Duration {
        self.model.consumed(self.node)
    }

    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_net::Sim;

    #[test]
    fn consume_advances_time_by_service() {
        let sim = Sim::new(1);
        let model = CpuModel::new();
        let m = model.clone();
        sim.spawn("worker", move || {
            // 1 MB at 5.5 MB/s ≈ 181.8 ms.
            m.consume(NodeId(0), 1 << 20, 5.5e6);
            let t = ctx::now().as_secs_f64();
            assert!((0.18..0.20).contains(&t), "t = {t}");
        });
        sim.run();
    }

    #[test]
    fn concurrent_consumers_serialize() {
        let sim = Sim::new(1);
        let model = CpuModel::new();
        for i in 0..2 {
            let m = model.clone();
            sim.spawn(format!("w{i}"), move || {
                m.consume(NodeId(0), 1_000_000, 10e6); // 100 ms each
            });
        }
        sim.run();
        // One CPU: 2 × 100 ms = 200 ms total, not 100 ms.
        assert_eq!(sim.now().as_nanos(), 200_000_000);
        assert_eq!(model.consumed(NodeId(0)), Duration::from_millis(200));
    }

    #[test]
    fn different_hosts_run_in_parallel() {
        let sim = Sim::new(1);
        let model = CpuModel::new();
        for i in 0..2 {
            let m = model.clone();
            sim.spawn(format!("w{i}"), move || {
                m.consume(NodeId(i), 1_000_000, 10e6);
            });
        }
        sim.run();
        assert_eq!(sim.now().as_nanos(), 100_000_000, "separate CPUs overlap");
    }

    #[test]
    fn unlimited_rates_are_free() {
        let sim = Sim::new(1);
        let model = CpuModel::new();
        let m = model.clone();
        sim.spawn("w", move || {
            m.consume(NodeId(0), 10 << 20, f64::INFINITY);
            assert_eq!(ctx::now().as_nanos(), 0);
        });
        sim.run();
    }

    #[test]
    fn level_scaling_is_monotone() {
        let r = CpuRates::default();
        for l in 1..9 {
            assert!(r.compress_at_level(l) > r.compress_at_level(l + 1));
        }
    }
}
