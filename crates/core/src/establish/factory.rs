//! Socket factories (paper §5.2, Fig. 8): "when a networking driver needs
//! to establish a connection, it delegates this to a socket factory which
//! builds the connection using the decision tree".
//!
//! Two factories exist, exactly as in NetIbis:
//!
//! * [`BootstrapSocketFactory`] — builds connections *without* any
//!   pre-existing link: plain client/server TCP, optionally through the
//!   site's SOCKS proxy (for strict sites). Used for name-service and
//!   relay connections.
//! * The **brokered** factory is the method-fallback loop in
//!   [`crate::node::GridNode`]: it negotiates over service links (splicing
//!   endpoints, NAT predictions) and therefore lives with the node runtime
//!   that owns those links.

use gridsim_net::SockAddr;
use gridsim_tcp::{SimHost, TcpStream};
use std::io;

use crate::socks::socks_connect;

/// Builds bootstrap connections: direct TCP when the site allows outbound,
/// through the configured SOCKS proxy otherwise.
#[derive(Clone)]
pub struct BootstrapSocketFactory {
    host: SimHost,
    via_proxy: Option<SockAddr>,
}

impl BootstrapSocketFactory {
    pub fn new(host: SimHost, via_proxy: Option<SockAddr>) -> BootstrapSocketFactory {
        BootstrapSocketFactory { host, via_proxy }
    }

    /// The host this factory dials from.
    pub fn host(&self) -> &SimHost {
        &self.host
    }

    /// Does this factory tunnel through a proxy?
    pub fn proxied(&self) -> bool {
        self.via_proxy.is_some()
    }

    /// Open a bootstrap connection to a public service.
    pub fn connect(&self, addr: SockAddr) -> io::Result<TcpStream> {
        match self.via_proxy {
            Some(proxy) => socks_connect(&self.host, proxy, addr),
            None => self.host.connect(addr),
        }
    }
}
