//! Socket factories (paper §5.2, Fig. 8): "when a networking driver needs
//! to establish a connection, it delegates this to a socket factory which
//! builds the connection using the decision tree".
//!
//! Two factories exist, exactly as in NetIbis:
//!
//! * [`BootstrapSocketFactory`] — builds connections *without* any
//!   pre-existing link: plain client/server TCP, optionally through the
//!   site's SOCKS proxy (for strict sites). Used for name-service and
//!   relay connections.
//! * The **brokered** factory is the method-fallback loop in
//!   [`crate::node::GridNode`]: it negotiates over service links (splicing
//!   endpoints, NAT predictions) and therefore lives with the node runtime
//!   that owns those links.

use gridsim_net::SockAddr;
use gridsim_tcp::{SimHost, TcpStream};
use std::io;
use std::time::Duration;

use crate::socks::socks_connect;

/// Retry budget for transient local dial failures (`AddrInUse`: the
/// ephemeral port space is momentarily exhausted during a connection
/// storm). Ports recycle as in-flight connects finish, so a short backoff
/// and retry degrades gracefully where the node used to fall over.
const DIAL_RETRIES: u32 = 8;
const DIAL_BACKOFF: Duration = Duration::from_millis(50);

/// Run `dial` with a bounded retry on [`io::ErrorKind::AddrInUse`]. Every
/// other error — and exhaustion that outlives the budget — propagates.
pub(crate) fn retry_addr_in_use<T>(mut dial: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut last = None;
    for _ in 0..=DIAL_RETRIES {
        match dial() {
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                last = Some(e);
                gridsim_net::ctx::sleep(DIAL_BACKOFF);
            }
            r => return r,
        }
    }
    Err(last.expect("retry loop ran at least once"))
}

/// Builds bootstrap connections: direct TCP when the site allows outbound,
/// through the configured SOCKS proxy otherwise.
#[derive(Clone)]
pub struct BootstrapSocketFactory {
    host: SimHost,
    via_proxy: Option<SockAddr>,
}

impl BootstrapSocketFactory {
    pub fn new(host: SimHost, via_proxy: Option<SockAddr>) -> BootstrapSocketFactory {
        BootstrapSocketFactory { host, via_proxy }
    }

    /// The host this factory dials from.
    pub fn host(&self) -> &SimHost {
        &self.host
    }

    /// Does this factory tunnel through a proxy?
    pub fn proxied(&self) -> bool {
        self.via_proxy.is_some()
    }

    /// Open a bootstrap connection to a public service. A storm of
    /// concurrent dials can transiently exhaust the ephemeral port space;
    /// that surfaces as `AddrInUse` and is retried after a short backoff.
    pub fn connect(&self, addr: SockAddr) -> io::Result<TcpStream> {
        retry_addr_in_use(|| match self.via_proxy {
            Some(proxy) => socks_connect(&self.host, proxy, addr),
            None => self.host.connect(addr),
        })
    }
}
