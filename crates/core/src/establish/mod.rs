//! Connection establishment methods and the method decision tree
//! (paper Section 3, Table 1 and Figure 4).

pub mod decision;
pub mod factory;

pub use decision::{choose_methods, LinkPurpose};
pub use factory::BootstrapSocketFactory;

/// Identity of a shared data link in the session layer: establishment is
/// keyed by `(peer node, stack equivalence class)`, so every channel whose
/// effective [`StackSpec`] encodes identically rides one established link
/// to that peer. The spec is compared in its wire encoding — the same bytes
/// the name service distributes — which makes "equivalent" exact: any field
/// that changes the assembled driver stack changes the key.
///
/// [`StackSpec`]: crate::drivers::StackSpec
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinkKey {
    /// The receive-port owner's grid id.
    pub peer: crate::nameservice::GridId,
    /// Encoded effective stack spec (stream-count overrides applied).
    pub spec: Vec<u8>,
}

impl LinkKey {
    pub fn new(peer: crate::nameservice::GridId, spec: &crate::drivers::StackSpec) -> LinkKey {
        LinkKey {
            peer,
            spec: spec.encode(),
        }
    }
}

/// The four establishment methods of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EstablishMethod {
    /// Standard TCP client/server handshake (paper §3.1).
    ClientServer,
    /// Simultaneous SYN / TCP splicing, brokered over service links
    /// (paper §3.2).
    Splicing,
    /// A SOCKS-style TCP proxy on a gateway (paper §3.3).
    Proxy,
    /// Routed messages through an application-level relay (paper §3.3).
    Routed,
}

/// The qualitative properties of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MethodProperties {
    /// Works between sites whose firewalls block incoming connections.
    pub crosses_firewalls: bool,
    /// NAT support: "no"/"client"/"partial"/"yes" in the paper's wording.
    pub nat_support: NatSupport,
    /// Usable without any pre-existing connection between the hosts.
    pub for_bootstrap: bool,
    /// Produces a native TCP socket composable with the utilization methods.
    pub native_tcp: bool,
    /// Data passes through an intermediate relay host.
    pub relayed: bool,
    /// Requires negotiation over a pre-existing (service) connection.
    pub needs_brokering: bool,
}

/// Table 1's "NAT support" column values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NatSupport {
    /// Only the client may be behind NAT.
    ClientOnly,
    /// Works only with predictable port translation.
    Partial,
    /// Fully supported.
    Yes,
}

impl std::fmt::Display for NatSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NatSupport::ClientOnly => write!(f, "client"),
            NatSupport::Partial => write!(f, "partial"),
            NatSupport::Yes => write!(f, "yes"),
        }
    }
}

impl EstablishMethod {
    /// The paper's Table 1, row by row.
    pub fn properties(self) -> MethodProperties {
        match self {
            EstablishMethod::ClientServer => MethodProperties {
                crosses_firewalls: false,
                nat_support: NatSupport::ClientOnly,
                for_bootstrap: true,
                native_tcp: true,
                relayed: false,
                needs_brokering: false,
            },
            EstablishMethod::Splicing => MethodProperties {
                crosses_firewalls: true,
                nat_support: NatSupport::Partial,
                for_bootstrap: false,
                native_tcp: true,
                relayed: false,
                needs_brokering: true,
            },
            EstablishMethod::Proxy => MethodProperties {
                crosses_firewalls: true,
                nat_support: NatSupport::Yes,
                for_bootstrap: false,
                native_tcp: true,
                relayed: true,
                needs_brokering: true,
            },
            EstablishMethod::Routed => MethodProperties {
                crosses_firewalls: true,
                nat_support: NatSupport::Yes,
                for_bootstrap: true,
                native_tcp: false,
                relayed: true,
                needs_brokering: false,
            },
        }
    }

    /// Paper §3.4 precedence: "client/server TCP, TCP splicing, TCP proxy,
    /// routed messages".
    pub const PRECEDENCE: [EstablishMethod; 4] = [
        EstablishMethod::ClientServer,
        EstablishMethod::Splicing,
        EstablishMethod::Proxy,
        EstablishMethod::Routed,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EstablishMethod::ClientServer => "client/server",
            EstablishMethod::Splicing => "TCP splicing",
            EstablishMethod::Proxy => "TCP proxy",
            EstablishMethod::Routed => "routed messages",
        }
    }
}

impl std::fmt::Display for EstablishMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1, transcribed: the code must state exactly what the paper
    /// states.
    #[test]
    fn table1_matches_paper() {
        use EstablishMethod::*;
        let t = |m: EstablishMethod| m.properties();
        // Crosses firewalls: no yes yes yes
        assert!(!t(ClientServer).crosses_firewalls);
        assert!(t(Splicing).crosses_firewalls);
        assert!(t(Proxy).crosses_firewalls);
        assert!(t(Routed).crosses_firewalls);
        // NAT support: client partial yes yes
        assert_eq!(t(ClientServer).nat_support, NatSupport::ClientOnly);
        assert_eq!(t(Splicing).nat_support, NatSupport::Partial);
        assert_eq!(t(Proxy).nat_support, NatSupport::Yes);
        assert_eq!(t(Routed).nat_support, NatSupport::Yes);
        // For bootstrap: yes no no yes
        assert!(t(ClientServer).for_bootstrap);
        assert!(!t(Splicing).for_bootstrap);
        assert!(!t(Proxy).for_bootstrap);
        assert!(t(Routed).for_bootstrap);
        // Native TCP: yes yes yes no
        assert!(t(ClientServer).native_tcp);
        assert!(t(Splicing).native_tcp);
        assert!(t(Proxy).native_tcp);
        assert!(!t(Routed).native_tcp);
        // Relayed: no no yes yes
        assert!(!t(ClientServer).relayed);
        assert!(!t(Splicing).relayed);
        assert!(t(Proxy).relayed);
        assert!(t(Routed).relayed);
        // Needs brokering: no yes yes no
        assert!(!t(ClientServer).needs_brokering);
        assert!(t(Splicing).needs_brokering);
        assert!(t(Proxy).needs_brokering);
        assert!(!t(Routed).needs_brokering);
    }
}
