//! The connection-method decision tree (paper Figure 4), generalized to an
//! ordered candidate list so the factory can fall back at runtime — the
//! paper's §6 reports exactly such fallbacks (splicing failing on
//! non-compliant NATs, reverting to a SOCKS proxy).

use crate::profile::ConnectivityProfile;

use super::EstablishMethod;

/// What the connection is for (paper Section 2's connection classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkPurpose {
    /// Bootstrap: no pre-existing connection, so no brokering possible.
    Bootstrap,
    /// Data (or service) connection: service links exist for negotiation.
    Data,
}

/// Compute the ordered list of establishment methods to attempt from
/// `initiator` towards `target`, following Figure 4:
///
/// ```text
/// bootstrap? ──yes──► client/server possible? ──► client/server, else routed
///     │no
/// firewall/NAT in the way? ──no──► client/server
///     │yes
/// NAT compatible with splicing? ──yes──► TCP splicing (then proxy, routed)
///     │no
/// proxy available? ──yes──► TCP proxy (then routed)
///     │no
/// routed messages
/// ```
pub fn choose_methods(
    initiator: &ConnectivityProfile,
    target: &ConnectivityProfile,
    purpose: LinkPurpose,
) -> Vec<EstablishMethod> {
    let mut out = Vec::with_capacity(3);

    // Client/server works when the target accepts unsolicited inbound TCP
    // and the initiator may dial out. (An initiator behind NAT is fine —
    // Table 1's "NAT support: client".)
    let client_server_ok = target.accepts_inbound() && initiator.can_dial_out();

    if purpose == LinkPurpose::Bootstrap {
        // Without a pre-existing connection only non-brokered methods
        // qualify (Table 1 "usable for bootstrap").
        if client_server_ok {
            out.push(EstablishMethod::ClientServer);
        }
        out.push(EstablishMethod::Routed);
        return out;
    }

    if client_server_ok {
        out.push(EstablishMethod::ClientServer);
        return out;
    }

    // Splicing: both ends must be able to emit outbound SYNs and have
    // predictable (or absent) NAT mappings.
    if initiator.splice_capable() && target.splice_capable() {
        out.push(EstablishMethod::Splicing);
    }

    // Proxy: a SOCKS proxy on the target's gateway lets the initiator reach
    // inward; one on the initiator's gateway lets a strictly firewalled
    // initiator reach out. Either unlocks the method (for a target that is
    // itself reachable or proxied).
    let proxy_reaches_target = target.socks_proxy.is_some() || target.accepts_inbound();
    let initiator_can_reach_proxy = initiator.can_dial_out() || initiator.socks_proxy.is_some();
    if proxy_reaches_target && initiator_can_reach_proxy {
        out.push(EstablishMethod::Proxy);
    }

    // Routed messages always work as the last resort (paper §3.3: "every
    // node connected to the Internet ... can connect to the relay").
    out.push(EstablishMethod::Routed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{FirewallClass, NatClass};
    use gridsim_net::{Ip, SockAddr};

    fn proxy() -> SockAddr {
        SockAddr::new(Ip::new(131, 9, 0, 1), 1080)
    }

    #[test]
    fn open_to_open_is_client_server() {
        let p = ConnectivityProfile::open();
        assert_eq!(
            choose_methods(&p, &p, LinkPurpose::Data),
            vec![EstablishMethod::ClientServer]
        );
    }

    #[test]
    fn firewalled_target_prefers_splicing() {
        // Paper Fig. 4: firewall in the way, no NAT incompatibility →
        // splicing first.
        let open = ConnectivityProfile::open();
        let fw = ConnectivityProfile::firewalled();
        let methods = choose_methods(&open, &fw, LinkPurpose::Data);
        assert_eq!(methods[0], EstablishMethod::Splicing);
        assert_eq!(*methods.last().unwrap(), EstablishMethod::Routed);
    }

    #[test]
    fn double_firewall_prefers_splicing() {
        let fw = ConnectivityProfile::firewalled();
        let methods = choose_methods(&fw, &fw, LinkPurpose::Data);
        assert_eq!(methods[0], EstablishMethod::Splicing);
    }

    #[test]
    fn predictable_nat_still_splices() {
        let nat = ConnectivityProfile::natted(NatClass::SymmetricPredictable);
        let fw = ConnectivityProfile::firewalled();
        let methods = choose_methods(&nat, &fw, LinkPurpose::Data);
        assert_eq!(methods[0], EstablishMethod::Splicing);
    }

    #[test]
    fn random_nat_skips_splicing_uses_proxy() {
        // The paper's §6 fallback: broken NAT → SOCKS proxy.
        let nat = ConnectivityProfile::natted(NatClass::SymmetricRandom);
        let fw_with_proxy = ConnectivityProfile::firewalled().with_proxy(proxy());
        let methods = choose_methods(&nat, &fw_with_proxy, LinkPurpose::Data);
        assert!(!methods.contains(&EstablishMethod::Splicing));
        assert_eq!(methods[0], EstablishMethod::Proxy);
    }

    #[test]
    fn random_nat_no_proxy_falls_to_routed() {
        let nat = ConnectivityProfile::natted(NatClass::SymmetricRandom);
        let fw = ConnectivityProfile::firewalled();
        let methods = choose_methods(&nat, &fw, LinkPurpose::Data);
        assert_eq!(methods, vec![EstablishMethod::Routed]);
    }

    #[test]
    fn strict_firewall_initiator_needs_own_proxy() {
        let strict = ConnectivityProfile {
            firewall: FirewallClass::Strict,
            nat: None,
            private_addr: false,
            socks_proxy: Some(proxy()),
        };
        let open = ConnectivityProfile::open();
        let methods = choose_methods(&strict, &open, LinkPurpose::Data);
        // Cannot dial out directly, cannot splice; its own proxy works.
        assert!(!methods.contains(&EstablishMethod::ClientServer));
        assert!(!methods.contains(&EstablishMethod::Splicing));
        assert_eq!(methods[0], EstablishMethod::Proxy);
    }

    #[test]
    fn bootstrap_to_open_is_client_server() {
        let fw = ConnectivityProfile::firewalled();
        let open = ConnectivityProfile::open();
        assert_eq!(
            choose_methods(&fw, &open, LinkPurpose::Bootstrap),
            vec![EstablishMethod::ClientServer, EstablishMethod::Routed]
        );
    }

    #[test]
    fn bootstrap_to_firewalled_is_routed_only() {
        // Fig. 4 leftmost branch: bootstrap + no direct reachability.
        let open = ConnectivityProfile::open();
        let fw = ConnectivityProfile::firewalled();
        assert_eq!(
            choose_methods(&open, &fw, LinkPurpose::Bootstrap),
            vec![EstablishMethod::Routed]
        );
    }

    #[test]
    fn every_profile_pair_has_at_least_one_method() {
        // Routed messages guarantee universal connectivity (§6: "we were
        // able to establish a connection from every node to every other
        // node").
        let profiles = [
            ConnectivityProfile::open(),
            ConnectivityProfile::firewalled(),
            ConnectivityProfile::natted(NatClass::Cone),
            ConnectivityProfile::natted(NatClass::SymmetricRandom),
        ];
        for a in &profiles {
            for b in &profiles {
                for purpose in [LinkPurpose::Bootstrap, LinkPurpose::Data] {
                    assert!(!choose_methods(a, b, purpose).is_empty());
                }
            }
        }
    }
}
