use gridsim_net::world::TraceKind;
use gridsim_net::{topology, LinkParams, NatKind, Sim, SockAddr};
use gridsim_tcp::SimHost;
use netgrid::*;
use std::time::Duration;

fn main() {
    let sim = Sim::new(18);
    let net = sim.net();
    let wan = LinkParams::mbps(2.0, Duration::from_millis(10));
    let (srv, a, b) = net.with(|w| {
        let mut grid = gridsim_net::topology::Grid::build(
            w,
            &[
                topology::SiteSpec::firewalled("ams", 1, wan),
                topology::SiteSpec::natted("berlin", 1, NatKind::SymmetricSequential, wan),
            ],
        );
        let (srv, _) = grid.add_public_host(w, "services");
        (srv, grid.sites[0].hosts[0], grid.sites[1].hosts[0])
    });
    let hsrv = SimHost::new(&net, srv);
    let ha = SimHost::new(&net, a);
    let hb = SimHost::new(&net, b);
    let env = GridEnv::new(net.clone(), SockAddr::new(hsrv.ip(), 563))
        .with_relay(SockAddr::new(hsrv.ip(), 600));
    let hsrv2 = hsrv.clone();
    sim.spawn("services", move || {
        spawn_name_service(&hsrv2, 563).unwrap();
        spawn_relay(&hsrv2, 600).unwrap();
    });
    sim.run();
    net.with(|w| {
        w.set_tracer(Box::new(|t, kind, pkt| {
            if matches!(
                kind,
                TraceKind::DropFirewall
                    | TraceKind::DropNat
                    | TraceKind::DropNoRoute
                    | TraceKind::DropNotLocal
            ) {
                println!("{t} {kind:?} {} -> {}", pkt.src, pkt.dst);
            }
        }))
    });
    // receiver = NATTED berlin
    let env_b = env.clone();
    sim.spawn("receiver", move || {
        let node = GridNode::join(
            &env_b,
            hb,
            "recv",
            ConnectivityProfile::natted(NatClass::SymmetricPredictable),
        )
        .unwrap();
        let rp = node.create_receive_port("p", StackSpec::plain()).unwrap();
        let m = rp.receive().unwrap();
        println!("received {} bytes", m.len());
    });
    // sender = firewalled amsterdam
    let env_a = env.clone();
    sim.spawn("sender", move || {
        gridsim_net::ctx::sleep(Duration::from_millis(200));
        let node = GridNode::join(&env_a, ha, "send", ConnectivityProfile::firewalled()).unwrap();
        let mut sp = node.create_send_port();
        let m = sp.connect("p").unwrap();
        println!("method: {m}");
        sp.send(b"hello").unwrap();
        sp.close().unwrap();
    });
    let out = sim.run_for(Duration::from_secs(120));
    println!("{out:?} done at {}", sim.now());
}
