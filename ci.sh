#!/bin/bash
# Repo gate. Stages:
#   1. cargo fmt --check
#   2. cargo clippy --workspace -D warnings
#   3. release build (bench bins are used by later stages)
#   4. golden wire-trace gate: re-run the traced scenarios and byte-diff
#      their digests against tests/golden/*.trace. `./ci.sh --bless`
#      regenerates the snapshots instead of failing (commit the diff).
#   5. quick bench-regression gate: bench_datapath / bench_faults /
#      bench_mux / bench_storm --quick vs the committed BENCH_*.json
#      baselines via check_bench (loose tolerance — quick runs are
#      noisier; the mux links/walks and storm walks==pairs invariants
#      stay exact regardless).
#   6. fault-matrix smoke + proptests under three fixed RNG seeds
#      (NETGRID_TEST_SEED shifts every Sim seed; the seed is printed on
#      failure so the exact run can be replayed).
#   7. full workspace test suite.
# run_benches.sh covers the full (slow) perf side separately.
set -eu
cd "$(dirname "$0")"

BLESS=0
for a in "$@"; do
  [ "$a" = "--bless" ] && BLESS=1
done

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy --workspace -- -D warnings ==="
cargo clippy --workspace -- -D warnings

echo "=== cargo build --release --workspace ==="
cargo build --release --workspace

BIN=./target/release
GOLD=tests/golden
FRESH=target/golden
mkdir -p "$FRESH"

echo "=== golden wire-trace gate ==="
# Each entry: trace-name :: command. The digest file hashes every packet
# event of every run in the binary, so any wire-level divergence fails.
run_trace() { # name cmd...
  local name=$1; shift
  echo "--- $name: $*"
  NETGRID_TRACE="$FRESH/$name.trace" "$@" > /dev/null
}
run_trace fig9_quick "$BIN/fig9_amsterdam_rennes" --quick
run_trace dbg_bw "$BIN/dbg_bw" --total 2097152
run_trace mux_pair "$BIN/bench_mux" --pair
# table1's golden is the binary's full stdout (method matrix + establishment
# outcomes), which pins the same simulations at the application level.
echo "--- table1: $BIN/table1_matrix (stdout snapshot)"
"$BIN/table1_matrix" > "$FRESH/table1.trace"

fail=0
for t in fig9_quick dbg_bw mux_pair table1; do
  if [ "$BLESS" = 1 ]; then
    cp "$FRESH/$t.trace" "$GOLD/$t.trace"
    echo "blessed $GOLD/$t.trace"
  elif ! cmp -s "$GOLD/$t.trace" "$FRESH/$t.trace"; then
    echo "GOLDEN TRACE DIFF: $t"
    diff "$GOLD/$t.trace" "$FRESH/$t.trace" | head -20 || true
    fail=1
  else
    echo "golden $t: identical"
  fi
done
if [ "$fail" = 1 ]; then
  echo "wire traces diverged from tests/golden/. If the change is intended,"
  echo "re-run './ci.sh --bless' and commit the updated snapshots."
  exit 1
fi

echo "=== quick bench-regression gate ==="
"$BIN/bench_datapath" --quick --out "$FRESH/BENCH_datapath_quick.json" > /dev/null 2>&1
"$BIN/bench_faults" --quick --out "$FRESH/BENCH_faults_quick.json" > /dev/null
"$BIN/bench_mux" --quick --out "$FRESH/BENCH_mux_quick.json" > /dev/null
"$BIN/bench_storm" --quick --out "$FRESH/BENCH_storm_quick.json" > /dev/null
# Quick runs shorten criterion measurement time only, so medians are
# comparable — but noisier, and host speed varies: use a loose tolerance.
# run_benches.sh applies the strict 20% gate on full runs. The mux gate's
# links/walks==1 invariant and the storm gate's walks==pairs invariant
# are exact regardless of tolerance.
"$BIN/check_bench" \
  --datapath "$FRESH/BENCH_datapath_quick.json" \
  --faults "$FRESH/BENCH_faults_quick.json" \
  --mux "$FRESH/BENCH_mux_quick.json" \
  --storm "$FRESH/BENCH_storm_quick.json" \
  --tolerance 0.35

echo "=== fault-matrix smoke + proptests, 3 fixed seeds ==="
for seed in 0 7 13; do
  echo "--- NETGRID_TEST_SEED=$seed"
  if ! NETGRID_TEST_SEED=$seed cargo test -q -p netgrid --test faults --release; then
    echo "FAULT MATRIX FAILED under NETGRID_TEST_SEED=$seed"
    echo "replay with: NETGRID_TEST_SEED=$seed cargo test -p netgrid --test faults"
    exit 1
  fi
done

echo "=== cargo test -q --workspace ==="
cargo test -q --workspace

echo "ci: all checks passed"
