#!/bin/bash
# Repo gate: formatting, lints (deny warnings), and the full test suite.
# Run before every push; run_benches.sh covers the perf side separately.
set -eu
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy --workspace -- -D warnings ==="
cargo clippy --workspace -- -D warnings

echo "=== fault-matrix smoke (link flaps, relay crashes, dead peers) ==="
cargo test -q -p netgrid --test faults

echo "=== cargo test -q ==="
cargo test -q

echo "ci: all checks passed"
