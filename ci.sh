#!/bin/bash
# Repo gate, organized as named stages:
#
#   fmt     cargo fmt --check
#   clippy  cargo clippy --workspace -D warnings
#   golden  golden wire-trace gate: re-run the traced scenarios and
#           byte-diff their digests against tests/golden/*.trace.
#           `./ci.sh --bless` (or `--stage golden --bless`) regenerates
#           the snapshots instead of failing (commit the diff).
#   bench   quick bench-regression gate: every bench with a committed
#           BENCH_*.json baseline runs --quick, then check_bench --all
#           verifies the fresh set matches the baseline set one-to-one
#           (a bench missing from this stage is itself a failure) and
#           applies each suite's typed gates (loose tolerance — quick
#           runs are noisier; the structural invariants stay exact:
#           mux links/walks==1, storm walks==pairs, relaymesh 4-relay
#           scaling >= 2x + BUSY engagement + failover FIFO).
#   faults  fault-matrix smoke under three fixed RNG seeds, over the
#           faults, storm, relay_mesh and adaptive suites
#           (NETGRID_TEST_SEED shifts every Sim seed; the replay
#           command is printed on failure).
#   test    full workspace test suite.
#
# `./ci.sh` runs everything in the order above (golden and bench build
# the release workspace first). `./ci.sh --stage bench` runs one stage;
# repeat or comma-separate to pick several (`--stage fmt,clippy`);
# `./ci.sh --stage list` prints the stage names and exits.
# Every run ends with a per-stage wall-clock summary.
# run_benches.sh covers the full (slow) perf side separately.
set -eu
cd "$(dirname "$0")"

BLESS=0
STAGES=""
while [ $# -gt 0 ]; do
  case "$1" in
    --bless) BLESS=1 ;;
    --stage) shift; STAGES="$STAGES ${1//,/ }" ;;
    --stage=*) a=${1#--stage=}; STAGES="$STAGES ${a//,/ }" ;;
    *) echo "ci.sh: unknown argument $1 (try --stage fmt|clippy|golden|bench|faults|test, --bless)"; exit 2 ;;
  esac
  shift
done
ALL_STAGES="fmt clippy golden bench faults test"
[ -z "$STAGES" ] && STAGES="$ALL_STAGES"
for s in $STAGES; do
  case "$s" in
    fmt|clippy|golden|bench|faults|test) ;;
    list) for n in $ALL_STAGES; do echo "$n"; done; exit 0 ;;
    *) echo "ci.sh: unknown stage '$s' (fmt|clippy|golden|bench|faults|test, or 'list' to print them)"; exit 2 ;;
  esac
done

BIN=./target/release
GOLD=tests/golden
FRESH=target/golden
mkdir -p "$FRESH"

# The release workspace build backs the golden and bench stages; run it
# once per invocation, only when a stage needs the bins.
BUILT=0
ensure_build() {
  if [ "$BUILT" = 0 ]; then
    echo "--- cargo build --release --workspace"
    cargo build --release --workspace
    BUILT=1
  fi
}

stage_fmt() {
  cargo fmt --check
}

stage_clippy() {
  cargo clippy --workspace -- -D warnings
}

stage_golden() {
  ensure_build
  # Each entry: trace-name :: command. The digest file hashes every packet
  # event of every run in the binary, so any wire-level divergence fails.
  run_trace() { # name cmd...
    local name=$1; shift
    echo "--- $name: $*"
    NETGRID_TRACE="$FRESH/$name.trace" "$@" > /dev/null
  }
  run_trace fig9_quick "$BIN/fig9_amsterdam_rennes" --quick
  run_trace dbg_bw "$BIN/dbg_bw" --total 2097152
  run_trace mux_pair "$BIN/bench_mux" --pair
  # table1's golden is the binary's full stdout (method matrix +
  # establishment outcomes), which pins the same simulations at the
  # application level.
  echo "--- table1: $BIN/table1_matrix (stdout snapshot)"
  "$BIN/table1_matrix" > "$FRESH/table1.trace"

  local fail=0 t
  for t in fig9_quick dbg_bw mux_pair table1; do
    if [ "$BLESS" = 1 ]; then
      cp "$FRESH/$t.trace" "$GOLD/$t.trace"
      echo "blessed $GOLD/$t.trace"
    elif ! cmp -s "$GOLD/$t.trace" "$FRESH/$t.trace"; then
      echo "GOLDEN TRACE DIFF: $t"
      diff "$GOLD/$t.trace" "$FRESH/$t.trace" | head -20 || true
      fail=1
    else
      echo "golden $t: identical"
    fi
  done
  if [ "$fail" = 1 ]; then
    echo "wire traces diverged from tests/golden/. If the change is intended,"
    echo "re-run './ci.sh --bless' and commit the updated snapshots."
    return 1
  fi
}

stage_bench() {
  ensure_build
  # Fresh quick runs land in their own dir under the baseline names, so
  # check_bench --all can pair them with the repo-root BENCH_*.json set
  # and fail (exit 2) on any bench missing from this stage.
  local QUICK="$FRESH/bench"
  rm -rf "$QUICK" && mkdir -p "$QUICK"
  "$BIN/bench_datapath" --quick --out "$QUICK/BENCH_datapath.json" > /dev/null 2>&1
  "$BIN/bench_faults" --quick --out "$QUICK/BENCH_faults.json" > /dev/null
  "$BIN/bench_mux" --quick --out "$QUICK/BENCH_mux.json" > /dev/null
  "$BIN/bench_storm" --quick --out "$QUICK/BENCH_storm.json" > /dev/null
  "$BIN/bench_relay_mesh" --quick --out "$QUICK/BENCH_relaymesh.json" > /dev/null
  "$BIN/bench_adaptive" --quick --out "$QUICK/BENCH_adaptive.json" > /dev/null
  # Quick runs shorten the workload only, so structural gates hold; host
  # speed varies, so the drift tolerance is loose. run_benches.sh applies
  # the strict 20% gate on full runs.
  "$BIN/check_bench" --all --fresh-dir "$QUICK" --tolerance 0.35
}

stage_faults() {
  local seed suite
  for seed in 0 7 13; do
    for suite in faults storm relay_mesh adaptive; do
      echo "--- NETGRID_TEST_SEED=$seed --test $suite"
      if ! NETGRID_TEST_SEED=$seed cargo test -q -p netgrid --test "$suite" --release; then
        echo "FAULT MATRIX FAILED: suite $suite under NETGRID_TEST_SEED=$seed"
        echo "replay with: NETGRID_TEST_SEED=$seed cargo test -p netgrid --test $suite"
        return 1
      fi
    done
  done
}

stage_test() {
  cargo test -q --workspace
}

SUMMARY=""
t_total=$SECONDS
for s in $STAGES; do
  echo "=== stage $s ==="
  t0=$SECONDS
  rc=0
  "stage_$s" || rc=$?
  dt=$((SECONDS - t0))
  if [ "$rc" != 0 ]; then
    SUMMARY="$SUMMARY$(printf '  %-8s %5ss  FAILED' "$s" "$dt")\n"
    printf 'ci summary (wall clock):\n%b' "$SUMMARY"
    exit "$rc"
  fi
  SUMMARY="$SUMMARY$(printf '  %-8s %5ss  ok' "$s" "$dt")\n"
done
printf 'ci summary (wall clock):\n%b' "$SUMMARY"
printf '  %-8s %5ss\n' total $((SECONDS - t_total))
echo "ci: all stages passed"
